//! Control/data flow graph over the µ-operations of a function.
//!
//! The paper's parallel-code machinery (Definitions 3–5) is phrased in terms
//! of a CDFG "where each node represents a MOP and a directed edge between
//! two nodes represents the data/control dependency"; a node with **no
//! transitive-closure edge** to an s-call is *independent code* to it.
//!
//! This module builds that graph, computes its transitive closure with a
//! dense bit matrix, and answers independence queries.

use std::collections::BTreeMap;

use crate::{Function, Mop, MopId, Reg};

/// Which dependency created an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DepKind {
    /// Register def → use.
    Data,
    /// Data-memory ordering (loads/stores/calls with overlapping regions).
    Memory,
    /// AGU pointer ordering.
    Agu,
    /// IP/buffer side-effect ordering.
    IpOrder,
    /// Control dependency on a branch.
    Control,
}

/// One of the two data memories of the target ASIP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemSpace {
    /// X data memory (XDM).
    X,
    /// Y data memory (YDM).
    Y,
}

/// A contiguous region of one data memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRegion {
    /// Memory space.
    pub space: MemSpace,
    /// First word address.
    pub base: u32,
    /// Number of words.
    pub len: u32,
}

impl MemRegion {
    /// Creates a region.
    #[must_use]
    pub fn new(space: MemSpace, base: u32, len: u32) -> MemRegion {
        MemRegion { space, base, len }
    }

    /// `true` if the two regions share at least one word.
    #[must_use]
    pub fn overlaps(&self, other: &MemRegion) -> bool {
        self.space == other.space
            && self.base < other.base.saturating_add(other.len)
            && other.base < self.base.saturating_add(self.len)
    }
}

/// Declared memory effects of a call µ-operation.
///
/// The caller of [`Cdfg::build`] supplies these per call site so that a call
/// only conflicts with code touching its actual argument/result arrays —
/// without this, no code after an s-call could ever be its parallel code.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallEffects {
    /// Regions the call reads.
    pub reads: Vec<MemRegion>,
    /// Regions the call writes.
    pub writes: Vec<MemRegion>,
}

impl CallEffects {
    /// Effects reading `r` and writing `w`.
    #[must_use]
    pub fn new(reads: Vec<MemRegion>, writes: Vec<MemRegion>) -> CallEffects {
        CallEffects { reads, writes }
    }

    /// Conservative effects: reads and writes all of both memories.
    #[must_use]
    pub fn conservative() -> CallEffects {
        let all = |space| MemRegion::new(space, 0, u32::MAX);
        CallEffects {
            reads: vec![all(MemSpace::X), all(MemSpace::Y)],
            writes: vec![all(MemSpace::X), all(MemSpace::Y)],
        }
    }

    fn writes_overlap(&self, other: &CallEffects) -> bool {
        let rw = self.writes.iter().any(|w| {
            other
                .reads
                .iter()
                .chain(&other.writes)
                .any(|r| w.overlaps(r))
        });
        let wr = other
            .writes
            .iter()
            .any(|w| self.reads.iter().any(|r| w.overlaps(r)));
        rw || wr
    }
}

/// Options controlling CDFG construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CdfgOptions {
    /// Memory effects per call µ-operation. Calls without an entry use
    /// [`CallEffects::conservative`].
    pub call_effects: BTreeMap<MopId, CallEffects>,
}

/// Dense square bit matrix used for reachability.
#[derive(Debug, Clone)]
struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    fn new(n: usize) -> BitMatrix {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    fn set(&mut self, i: usize, j: usize) {
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.words_per_row + j / 64] |= 1u64 << (j % 64);
    }

    fn get(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.words_per_row + j / 64] & (1u64 << (j % 64)) != 0
    }

    /// `row(i) |= row(j)`; rows must be distinct.
    fn or_row(&mut self, i: usize, j: usize) {
        debug_assert_ne!(i, j);
        let w = self.words_per_row;
        let (lo, hi) = if i < j {
            let (a, b) = self.bits.split_at_mut(j * w);
            (&mut a[i * w..i * w + w], &b[..w])
        } else {
            let (a, b) = self.bits.split_at_mut(i * w);
            (&mut b[..w], &a[j * w..j * w + w])
        };
        for (d, s) in lo.iter_mut().zip(hi) {
            *d |= *s;
        }
    }
}

/// The control/data flow graph of one [`Function`], with transitive closure.
///
/// # Example
///
/// ```
/// use partita_mop::{Function, Mop, AluOp, Reg, Cdfg};
/// let mut f = Function::new("ex");
/// let b = f.add_block();
/// let m0 = f.push_mop(b, Mop::load_imm(Reg(0), 1));
/// let m1 = f.push_mop(b, Mop::alu(AluOp::Add, Reg(1), Reg(0), 2)); // uses r0
/// let m2 = f.push_mop(b, Mop::load_imm(Reg(2), 7));                 // independent
/// f.compute_edges();
/// let g = Cdfg::build(&f, &Default::default());
/// assert!(g.related(m0, m1));
/// assert!(!g.related(m0, m2));
/// ```
#[derive(Debug, Clone)]
pub struct Cdfg {
    /// MOPs in linear (block, program) order.
    order: Vec<MopId>,
    /// Linear index per MopId (arena index → order position).
    position: Vec<usize>,
    /// Direct edges `(from, to, kind)` in linear indices.
    edges: Vec<(usize, usize, DepKind)>,
    /// Transitive closure (forward reachability).
    reach: BitMatrix,
}

impl Cdfg {
    /// Builds the CDFG and its transitive closure for `func`.
    ///
    /// Dependencies recorded:
    /// * register def→use (last definition in linear order),
    /// * memory ordering: loads/stores are conservative over their whole
    ///   memory space; calls use their declared [`CallEffects`],
    /// * AGU pointer ordering,
    /// * IP/buffer side-effect program order,
    /// * control: a branch terminator orders every later µ-operation in its
    ///   successor region.
    ///
    /// Loop back-edges are not tracked (loop-carried dependencies are out of
    /// scope for parallel-code discovery, which the paper restricts to code
    /// "in the same execution branch").
    #[must_use]
    pub fn build(func: &Function, opts: &CdfgOptions) -> Cdfg {
        let mut order: Vec<MopId> = Vec::with_capacity(func.mop_count());
        for b in func.blocks() {
            order.extend_from_slice(b.mops());
        }
        let n = order.len();
        let mut position = vec![usize::MAX; func.mop_count()];
        for (i, m) in order.iter().enumerate() {
            position[m.index()] = i;
        }

        let mops: Vec<&Mop> = order
            .iter()
            .map(|m| func.mop(*m).expect("ordered mop exists"))
            .collect();

        let mut edges: Vec<(usize, usize, DepKind)> = Vec::new();

        // Register def → use.
        let mut last_def: BTreeMap<Reg, usize> = BTreeMap::new();
        for (i, m) in mops.iter().enumerate() {
            for u in m.uses() {
                if let Some(&d) = last_def.get(&u) {
                    edges.push((d, i, DepKind::Data));
                }
            }
            for d in m.defs() {
                // Output dependency: order successive defs of the same reg.
                if let Some(&prev) = last_def.get(&d) {
                    edges.push((prev, i, DepKind::Data));
                }
                last_def.insert(d, i);
            }
        }

        // Memory ordering. Effective regions per op.
        let effects: Vec<Option<CallEffects>> = order
            .iter()
            .zip(&mops)
            .map(|(id, m)| {
                if m.callee().is_some() {
                    Some(
                        opts.call_effects
                            .get(id)
                            .cloned()
                            .unwrap_or_else(CallEffects::conservative),
                    )
                } else {
                    let mut e = CallEffects::default();
                    if m.reads_xmem() {
                        e.reads.push(MemRegion::new(MemSpace::X, 0, u32::MAX));
                    }
                    if m.reads_ymem() {
                        e.reads.push(MemRegion::new(MemSpace::Y, 0, u32::MAX));
                    }
                    if m.writes_xmem() {
                        e.writes.push(MemRegion::new(MemSpace::X, 0, u32::MAX));
                    }
                    if m.writes_ymem() {
                        e.writes.push(MemRegion::new(MemSpace::Y, 0, u32::MAX));
                    }
                    if e.reads.is_empty() && e.writes.is_empty() {
                        None
                    } else {
                        Some(e)
                    }
                }
            })
            .collect();
        let touching: Vec<usize> = (0..n).filter(|&i| effects[i].is_some()).collect();
        for (a, &i) in touching.iter().enumerate() {
            let ei = effects[i].as_ref().expect("filtered");
            for &j in &touching[a + 1..] {
                let ej = effects[j].as_ref().expect("filtered");
                if ei.writes_overlap(ej) {
                    edges.push((i, j, DepKind::Memory));
                }
            }
        }

        // AGU ordering: write-read / read-write / write-write per pointer.
        for agu in 0u8..4 {
            let users: Vec<usize> = (0..n).filter(|&i| mops[i].touches_agu(agu)).collect();
            for (a, &i) in users.iter().enumerate() {
                for &j in &users[a + 1..] {
                    if mops[i].writes_agu(agu) || mops[j].writes_agu(agu) {
                        edges.push((i, j, DepKind::Agu));
                    }
                }
            }
        }

        // IP/buffer side-effect order.
        let mut prev_ip: Option<usize> = None;
        for (i, m) in mops.iter().enumerate() {
            if m.has_ip_side_effect() {
                if let Some(p) = prev_ip {
                    edges.push((p, i, DepKind::IpOrder));
                }
                prev_ip = Some(i);
            }
        }

        // Control: a branch orders everything after it in linear order that
        // lives in a different block (its region of influence).
        for (i, m) in mops.iter().enumerate() {
            if m.is_control() && m.callee().is_none() {
                // Branch/jump/ret: order every op after it.
                for j in i + 1..n {
                    edges.push((i, j, DepKind::Control));
                }
            }
        }

        // Keep only forward edges (construction guarantees from < to except
        // for degenerate same-index cases which we drop).
        edges.retain(|&(a, b, _)| a < b);
        edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        edges.dedup();

        // Transitive closure by reverse-order DP (all edges are forward).
        let mut reach = BitMatrix::new(n.max(1));
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b, _) in &edges {
            succs[a].push(b);
        }
        for i in (0..n).rev() {
            for &s in &succs[i] {
                reach.set(i, s);
                reach.or_row(i, s);
            }
        }

        Cdfg {
            order,
            position,
            edges,
            reach,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// MOPs in linear order.
    #[must_use]
    pub fn order(&self) -> &[MopId] {
        &self.order
    }

    /// Linear position of a MOP, or `None` if it is not in any block.
    #[must_use]
    pub fn position(&self, m: MopId) -> Option<usize> {
        self.position
            .get(m.index())
            .copied()
            .filter(|&p| p != usize::MAX)
    }

    /// Direct edges as `(from, to, kind)` linear indices.
    #[must_use]
    pub fn direct_edges(&self) -> &[(usize, usize, DepKind)] {
        &self.edges
    }

    /// `true` if there is a transitive dependency path `a → b` **or** `b → a`.
    ///
    /// # Panics
    ///
    /// Panics if either MOP is not part of a block.
    #[must_use]
    pub fn related(&self, a: MopId, b: MopId) -> bool {
        let pa = self.position(a).expect("mop a not in cdfg");
        let pb = self.position(b).expect("mop b not in cdfg");
        pa == pb || self.reach.get(pa, pb) || self.reach.get(pb, pa)
    }

    /// All MOPs with no transitive-closure edge to or from `of` — the
    /// *independent code* set `IC_i` of Definition 3.
    ///
    /// # Panics
    ///
    /// Panics if `of` is not part of a block.
    #[must_use]
    pub fn independent_mops(&self, of: MopId) -> Vec<MopId> {
        let p = self.position(of).expect("mop not in cdfg");
        self.order
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != p && !self.reach.get(p, i) && !self.reach.get(i, p))
            .map(|(_, m)| *m)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, BlockId, FuncId};

    fn straight(mops: Vec<Mop>) -> (Function, Vec<MopId>) {
        let mut f = Function::new("t");
        let b = f.add_block();
        let ids = mops.into_iter().map(|m| f.push_mop(b, m)).collect();
        f.compute_edges();
        (f, ids)
    }

    #[test]
    fn def_use_chain_is_transitive() {
        let (f, ids) = straight(vec![
            Mop::load_imm(Reg(0), 1),
            Mop::alu(AluOp::Add, Reg(1), Reg(0), 1),
            Mop::alu(AluOp::Add, Reg(2), Reg(1), 1),
        ]);
        let g = Cdfg::build(&f, &CdfgOptions::default());
        assert!(g.related(ids[0], ids[2]));
        assert!(g.related(ids[0], ids[1]));
    }

    #[test]
    fn unrelated_mops_are_independent() {
        let (f, ids) = straight(vec![
            Mop::load_imm(Reg(0), 1),
            Mop::load_imm(Reg(1), 2),
            Mop::alu(AluOp::Add, Reg(2), Reg(0), 1),
        ]);
        let g = Cdfg::build(&f, &CdfgOptions::default());
        assert!(!g.related(ids[0], ids[1]));
        let ind = g.independent_mops(ids[1]);
        assert!(ind.contains(&ids[0]));
        assert!(ind.contains(&ids[2]));
    }

    #[test]
    fn output_dependency_orders_defs() {
        let (f, ids) = straight(vec![Mop::load_imm(Reg(0), 1), Mop::load_imm(Reg(0), 2)]);
        let g = Cdfg::build(&f, &CdfgOptions::default());
        assert!(g.related(ids[0], ids[1]));
    }

    #[test]
    fn conservative_call_blocks_memory_ops() {
        let (f, ids) = straight(vec![
            Mop::call(FuncId(1)),
            Mop::load_x(Reg(0), 0),
            Mop::load_imm(Reg(1), 3),
        ]);
        let g = Cdfg::build(&f, &CdfgOptions::default());
        assert!(g.related(ids[0], ids[1])); // memory conflict
        assert!(!g.related(ids[0], ids[2])); // pure register code independent
    }

    #[test]
    fn declared_effects_allow_disjoint_regions() {
        let (f, ids) = straight(vec![
            Mop::call(FuncId(1)),
            Mop::load_imm(Reg(0), 7),
            Mop::call(FuncId(2)),
        ]);
        let mut opts = CdfgOptions::default();
        // Call 0 touches X[0..16); call 2 touches X[100..116).
        opts.call_effects.insert(
            ids[0],
            CallEffects::new(
                vec![MemRegion::new(MemSpace::X, 0, 16)],
                vec![MemRegion::new(MemSpace::X, 0, 16)],
            ),
        );
        opts.call_effects.insert(
            ids[2],
            CallEffects::new(
                vec![MemRegion::new(MemSpace::X, 100, 16)],
                vec![MemRegion::new(MemSpace::X, 100, 16)],
            ),
        );
        let g = Cdfg::build(&f, &opts);
        assert!(!g.related(ids[0], ids[2])); // disjoint regions
        assert!(!g.related(ids[0], ids[1])); // register code independent

        // A raw load is conservative over its whole memory space, so it
        // relates to any call that touches that space — and transitively
        // links calls on either side of it.
        let (f2, ids2) = straight(vec![
            Mop::call(FuncId(1)),
            Mop::load_x(Reg(0), 0),
            Mop::call(FuncId(2)),
        ]);
        let mut opts2 = CdfgOptions::default();
        opts2.call_effects.insert(
            ids2[0],
            CallEffects::new(vec![], vec![MemRegion::new(MemSpace::X, 0, 16)]),
        );
        opts2.call_effects.insert(
            ids2[2],
            CallEffects::new(vec![], vec![MemRegion::new(MemSpace::X, 100, 16)]),
        );
        let g2 = Cdfg::build(&f2, &opts2);
        assert!(g2.related(ids2[0], ids2[1]));
        assert!(g2.related(ids2[0], ids2[2])); // transitively via the load
    }

    #[test]
    fn read_read_does_not_conflict() {
        let (f, ids) = straight(vec![Mop::load_x(Reg(0), 0), Mop::load_x(Reg(1), 1)]);
        let g = Cdfg::build(&f, &CdfgOptions::default());
        assert!(!g.related(ids[0], ids[1]));
    }

    #[test]
    fn branch_orders_following_code() {
        let mut f = Function::new("br");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let c = f.push_mop(b0, Mop::load_imm(Reg(0), 1));
        let br = f.push_mop(b0, Mop::branch_nz(Reg(0), b1, b1));
        let after = f.push_mop(b1, Mop::load_imm(Reg(1), 2));
        f.compute_edges();
        let g = Cdfg::build(&f, &CdfgOptions::default());
        assert!(g.related(br, after));
        assert!(g.related(c, after)); // via the branch
        assert_eq!(g.position(br), Some(1));
        assert_eq!(g.order()[0], c);
        assert_eq!(BlockId(1), b1);
    }

    #[test]
    fn ip_side_effects_keep_order() {
        let (f, ids) = straight(vec![Mop::ip_start(), Mop::ip_read(Reg(0), 0)]);
        let g = Cdfg::build(&f, &CdfgOptions::default());
        assert!(g.related(ids[0], ids[1]));
    }

    #[test]
    fn agu_step_orders_loads() {
        let (f, ids) = straight(vec![
            Mop::load_x(Reg(0), 0),
            Mop::agu_step(0, 1),
            Mop::load_x(Reg(1), 0),
        ]);
        let g = Cdfg::build(&f, &CdfgOptions::default());
        assert!(g.related(ids[0], ids[1]));
        assert!(g.related(ids[1], ids[2]));
    }

    #[test]
    fn empty_function_builds() {
        let f = Function::new("empty");
        let g = Cdfg::build(&f, &CdfgOptions::default());
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert!(g.direct_edges().is_empty());
    }

    #[test]
    fn mem_region_overlap_cases() {
        let a = MemRegion::new(MemSpace::X, 0, 10);
        let b = MemRegion::new(MemSpace::X, 9, 1);
        let c = MemRegion::new(MemSpace::X, 10, 5);
        let d = MemRegion::new(MemSpace::Y, 0, 100);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&d));
    }
}
