//! Execution path enumeration.
//!
//! The ILP formulation (Eq. 2) imposes one required-gain constraint per
//! execution path `P_k`; an execution path is an acyclic block sequence from
//! the function entry to an exit.

use crate::{BlockId, CallSiteId, Cycles, FuncId, Function, MopError, PathId};

/// Safety limits for path enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEnumLimits {
    /// Maximum number of paths produced before erroring out.
    pub max_paths: usize,
    /// Maximum blocks on a single path.
    pub max_len: usize,
}

impl Default for PathEnumLimits {
    fn default() -> Self {
        PathEnumLimits {
            max_paths: 4096,
            max_len: 1024,
        }
    }
}

/// An execution path: an acyclic block sequence from entry to an exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecPath {
    /// Path identifier (`P1`, `P2`, … in the paper's figures).
    pub id: PathId,
    /// Blocks on the path, entry first.
    pub blocks: Vec<BlockId>,
}

impl ExecPath {
    /// `true` if the path visits `block`.
    #[must_use]
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.contains(&block)
    }

    /// Profile-weighted software cycles spent on this path.
    #[must_use]
    pub fn software_cycles(&self, func: &Function) -> Cycles {
        self.blocks
            .iter()
            .filter_map(|b| func.block(*b).ok())
            .map(|b| Cycles(b.mops().len() as u64).scaled(b.exec_count()))
            .sum()
    }

    /// Call sites of `func` that lie on this path, in path order.
    ///
    /// `sites` is the program-wide call-site list; only sites belonging to
    /// `func_id` are considered.
    #[must_use]
    pub fn call_sites_on_path(
        &self,
        func_id: FuncId,
        sites: &[crate::CallSite],
    ) -> Vec<CallSiteId> {
        let mut out = Vec::new();
        for b in &self.blocks {
            for s in sites {
                if s.caller == func_id && s.block == *b {
                    out.push(s.id);
                }
            }
        }
        out
    }
}

/// Enumerates all acyclic execution paths of `func` (entry → exit).
///
/// Loop back-edges are cut by refusing to revisit a block already on the
/// current path, which matches the paper's treatment of paths as distinct
/// execution branches (Fig. 8) rather than unrolled traces.
///
/// # Errors
///
/// Returns [`MopError::PathLimitExceeded`] when `limits.max_paths` is hit.
pub fn enumerate_paths(func: &Function, limits: PathEnumLimits) -> Result<Vec<ExecPath>, MopError> {
    let mut out: Vec<ExecPath> = Vec::new();
    if func.blocks().is_empty() {
        return Ok(out);
    }
    let mut stack: Vec<BlockId> = vec![func.entry()];
    let mut on_path = vec![false; func.blocks().len()];

    fn dfs(
        func: &Function,
        limits: PathEnumLimits,
        stack: &mut Vec<BlockId>,
        on_path: &mut [bool],
        out: &mut Vec<ExecPath>,
    ) -> Result<(), MopError> {
        let cur = *stack.last().expect("dfs stack non-empty");
        on_path[cur.index()] = true;
        // Effective successors: a back edge to a block already on the path
        // (a loop) is followed through to that block's own exits, so the
        // path continues with the code after the loop instead of ending
        // inside its body.
        let mut succs: Vec<BlockId> = Vec::new();
        let mut work: Vec<BlockId> = func.block(cur).expect("block exists").succs().to_vec();
        let mut expanded = vec![false; on_path.len()];
        while let Some(s) = work.pop() {
            if !on_path[s.index()] {
                if !succs.contains(&s) {
                    succs.push(s);
                }
            } else if !expanded[s.index()] {
                expanded[s.index()] = true;
                work.extend_from_slice(func.block(s).expect("block exists").succs());
            }
        }
        succs.sort_unstable();
        if succs.is_empty() || stack.len() >= limits.max_len {
            if out.len() >= limits.max_paths {
                on_path[cur.index()] = false;
                return Err(MopError::PathLimitExceeded {
                    func: func.id(),
                    max_paths: limits.max_paths,
                });
            }
            out.push(ExecPath {
                id: PathId::from_index(out.len()),
                blocks: stack.clone(),
            });
        } else {
            for s in succs {
                stack.push(s);
                dfs(func, limits, stack, on_path, out)?;
                stack.pop();
            }
        }
        on_path[cur.index()] = false;
        Ok(())
    }

    dfs(func, limits, &mut stack, &mut on_path, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mop, Reg};

    fn diamond() -> Function {
        let mut f = Function::new("d");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        f.push_mop(b0, Mop::load_imm(Reg(0), 1));
        f.push_mop(b0, Mop::branch_nz(Reg(0), b1, b2));
        f.push_mop(b1, Mop::jump(b3));
        f.push_mop(b2, Mop::jump(b3));
        f.push_mop(b3, Mop::ret());
        f.compute_edges();
        f
    }

    #[test]
    fn diamond_has_two_paths() {
        let f = diamond();
        let paths = enumerate_paths(&f, PathEnumLimits::default()).unwrap();
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.blocks.first() == Some(&BlockId(0))));
        assert!(paths.iter().all(|p| p.blocks.last() == Some(&BlockId(3))));
        assert_ne!(paths[0].blocks, paths[1].blocks);
        assert_eq!(paths[0].id, PathId(0));
    }

    #[test]
    fn loop_is_cut() {
        let mut f = Function::new("loop");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.push_mop(b0, Mop::load_imm(Reg(0), 4));
        f.push_mop(b1, Mop::branch_nz(Reg(0), b1, b2)); // self loop
        f.push_mop(b2, Mop::ret());
        f.compute_edges();
        let paths = enumerate_paths(&f, PathEnumLimits::default()).unwrap();
        // b0 -> b1 -> b2 (self edge refused) = 1 path.
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].blocks, vec![b0, b1, b2]);
    }

    #[test]
    fn limit_exceeded_errors() {
        let f = diamond();
        let err = enumerate_paths(
            &f,
            PathEnumLimits {
                max_paths: 1,
                max_len: 10,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MopError::PathLimitExceeded { max_paths: 1, .. }
        ));
    }

    #[test]
    fn path_software_cycles_weighted() {
        let mut f = diamond();
        f.set_exec_count(BlockId(0), 2).unwrap();
        let paths = enumerate_paths(&f, PathEnumLimits::default()).unwrap();
        // Path through b1: b0 (2 mops x2) + b1 (1 mop) + b3 (1 mop) = 6.
        let p = paths.iter().find(|p| p.contains(BlockId(1))).unwrap();
        assert_eq!(p.software_cycles(&f), Cycles(6));
    }

    #[test]
    fn empty_function_has_no_paths() {
        let f = Function::new("e");
        assert!(enumerate_paths(&f, PathEnumLimits::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn call_sites_on_path_filters_by_block() {
        use crate::{FuncId, MopProgram};
        let mut p = MopProgram::new();
        let mut main = Function::new("main");
        let b0 = main.add_block();
        let b1 = main.add_block();
        let b2 = main.add_block();
        let b3 = main.add_block();
        main.push_mop(b0, Mop::load_imm(Reg(0), 1));
        main.push_mop(b0, Mop::branch_nz(Reg(0), b1, b2));
        main.push_mop(b1, Mop::call(FuncId(1)));
        main.push_mop(b1, Mop::jump(b3));
        main.push_mop(b2, Mop::call(FuncId(2)));
        main.push_mop(b2, Mop::jump(b3));
        main.push_mop(b3, Mop::halt());
        main.compute_edges();
        let mid = p.add_function(main).unwrap();
        p.add_function(Function::new("fir")).unwrap();
        p.add_function(Function::new("dct")).unwrap();
        let sites = p.call_sites();
        let f = p.function(mid).unwrap();
        let paths = enumerate_paths(f, PathEnumLimits::default()).unwrap();
        assert_eq!(paths.len(), 2);
        for path in &paths {
            let on = path.call_sites_on_path(mid, &sites);
            assert_eq!(on.len(), 1);
        }
    }
}
