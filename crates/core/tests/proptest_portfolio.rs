//! Property tests for the racing portfolio backend: whatever the race
//! interleaving, the portfolio must never fabricate a result no racer
//! produced, must stay byte-deterministic across thread counts, and must
//! never launder budget exhaustion into an optimality claim.

use proptest::prelude::*;

use partita_core::{
    Backend, CoreError, Imp, ImpDb, Instance, OptimalityStatus, ParallelChoice, RequiredGains,
    SCall, SolveBudget, SolveOptions, Solver,
};
use partita_interface::{InterfaceKind, TransferJob};
use partita_ip::{IpBlock, IpFunction, IpId};
use partita_mop::{AreaTenths, CallSiteId, Cycles};

/// A random conflict-bearing instance: 4 s-calls on one path, IMPs that may
/// consume another s-call's software implementation as parallel code (the
/// Problem 2 structure the conflict-enumeration racer exploits).
#[derive(Debug, Clone)]
struct RaceInstance {
    ip_areas: Vec<i64>,
    /// (scall, ip, gain, interface tenths, consumed scall or same = none)
    imps: Vec<(u32, u32, u64, i64, u32)>,
    required: u64,
}

fn race_instance() -> impl Strategy<Value = RaceInstance> {
    (
        proptest::collection::vec(1i64..20, 2..4),
        proptest::collection::vec((0u32..4, 0u32..3, 1u64..200, 0i64..10, 0u32..4), 1..8),
        0u64..500,
    )
        .prop_map(|(ip_areas, mut imps, required)| {
            let n_ips = ip_areas.len() as u32;
            for imp in &mut imps {
                imp.1 %= n_ips;
            }
            RaceInstance {
                ip_areas,
                imps,
                required,
            }
        })
}

fn build(ri: &RaceInstance) -> (Instance, ImpDb) {
    let mut inst = Instance::new("race-prop");
    for (i, &a) in ri.ip_areas.iter().enumerate() {
        inst.library.add(
            IpBlock::builder(format!("ip{i}"))
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(a))
                .build(),
        );
    }
    for sc in 0..4u32 {
        inst.add_scall(SCall::new(
            format!("f{sc}"),
            IpFunction::Fir,
            Cycles(1000),
            TransferJob::new(8, 8),
        ));
    }
    inst.add_path((0..4).map(CallSiteId).collect());
    let imps = ri
        .imps
        .iter()
        .map(|&(sc, ip, gain, tenths, consumed)| {
            let parallel = if consumed == sc {
                ParallelChoice::None
            } else {
                ParallelChoice::SwScalls(vec![CallSiteId(consumed)])
            };
            Imp::new(
                CallSiteId(sc),
                vec![IpId(ip)],
                InterfaceKind::Type1,
                Cycles(gain),
                AreaTenths::from_tenths(tenths),
                parallel,
            )
        })
        .collect();
    (inst, ImpDb::from_imps(imps))
}

fn options(required: u64, threads: usize) -> SolveOptions {
    SolveOptions::problem2(RequiredGains::uniform(Cycles(required)))
        // No fallback: budget trouble must surface as an error here.
        .budget(
            SolveBudget::default()
                .with_fallback(None)
                .with_threads(threads),
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under an ample budget the race always concludes, and cancel-on-win
    /// returns exactly the selection every exact racer would return alone —
    /// whoever won. This is the "never fabricates a result" lock: a result
    /// differing from all racers' own results would trip it.
    #[test]
    fn race_returns_exactly_the_racers_common_result(ri in race_instance()) {
        let (inst, db) = build(&ri);
        let race = Solver::new(&inst)
            .with_imps(db.clone())
            .solve(&options(ri.required, 1).backend(Backend::Portfolio));
        let solo: Vec<_> = [Backend::BranchBound, Backend::ConflictEnum, Backend::Lagrangian]
            .into_iter()
            .map(|b| {
                Solver::new(&inst)
                    .with_imps(db.clone())
                    .solve(&options(ri.required, 1).backend(b))
            })
            .collect();
        match race {
            Ok(sel) => {
                prop_assert_eq!(sel.status, OptimalityStatus::Optimal);
                for (b, s) in [Backend::BranchBound, Backend::ConflictEnum, Backend::Lagrangian]
                    .iter()
                    .zip(&solo)
                {
                    let s = s.as_ref().unwrap_or_else(|e| {
                        panic!("race feasible but {b} errored: {e}")
                    });
                    prop_assert_eq!(
                        sel.chosen(), s.chosen(),
                        "portfolio selection is not {}'s selection", b
                    );
                    prop_assert_eq!(sel.total_area(), s.total_area());
                }
            }
            Err(CoreError::Infeasible { .. }) => {
                for s in &solo {
                    prop_assert!(
                        matches!(s, Err(CoreError::Infeasible { .. })),
                        "race infeasible but a solo racer disagreed: {s:?}"
                    );
                }
            }
            Err(e) => prop_assert!(false, "unexpected race error: {e}"),
        }
    }

    /// The raced result is byte-identical across branch-and-bound worker
    /// counts (the racer line-up itself is fixed; only BB's internal
    /// parallelism varies).
    #[test]
    fn race_is_deterministic_across_thread_counts(ri in race_instance()) {
        let (inst, db) = build(&ri);
        let at = |threads: usize| {
            Solver::new(&inst)
                .with_imps(db.clone())
                .solve(&options(ri.required, threads).backend(Backend::Portfolio))
        };
        match (at(1), at(4)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.chosen(), b.chosen(), "selection varies with threads");
                prop_assert_eq!(a.total_area(), b.total_area());
                prop_assert_eq!(a.status, b.status);
            }
            (Err(CoreError::Infeasible { .. }), Err(CoreError::Infeasible { .. })) => {}
            (a, b) => prop_assert!(false, "thread-count divergence: {a:?} vs {b:?}"),
        }
    }

    /// Budget honesty, end to end, for every backend: under a starved node
    /// budget a backend may fail or may return a feasible point, but a
    /// selection claiming `Optimal` must actually BE the optimum (checked
    /// against an unbudgeted reference), and a feasible non-optimal claim
    /// must never beat it.
    #[test]
    fn no_backend_launders_exhaustion_into_optimal(
        ri in race_instance(),
        backend_idx in 0usize..Backend::ALL.len(),
        max_nodes in 1usize..4,
    ) {
        let backend = Backend::ALL[backend_idx];
        let (inst, db) = build(&ri);
        let reference = Solver::new(&inst)
            .with_imps(db.clone())
            .solve(&options(ri.required, 1));
        let starved = SolveOptions::problem2(RequiredGains::uniform(Cycles(ri.required)))
            .backend(backend)
            .budget(
                SolveBudget::default()
                    .with_max_nodes(max_nodes)
                    .with_fallback(None)
                    .with_threads(1),
            );
        match Solver::new(&inst).with_imps(db.clone()).solve(&starved) {
            Ok(sel) => {
                let opt = reference.as_ref().unwrap_or_else(|e| {
                    panic!("starved {backend} feasible but reference errored: {e}")
                });
                prop_assert!(
                    sel.total_area() >= opt.total_area(),
                    "starved {} beat the optimum", backend
                );
                if sel.status == OptimalityStatus::Optimal {
                    prop_assert_eq!(
                        sel.total_area(), opt.total_area(),
                        "{} claimed Optimal for a non-optimal selection", backend
                    );
                }
                prop_assert!(sel.verify(&inst, &starved).is_ok());
            }
            Err(CoreError::BudgetExhausted) => {}
            Err(CoreError::Infeasible { .. }) => {
                // An infeasibility *proof* requires a completed search; the
                // unbudgeted reference must agree.
                prop_assert!(
                    matches!(reference, Err(CoreError::Infeasible { .. })),
                    "starved {} claimed infeasible on a feasible instance", backend
                );
            }
            Err(e) => prop_assert!(false, "unexpected error from starved {}: {e}", backend),
        }
    }
}
