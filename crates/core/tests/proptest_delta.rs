//! Property tests for the incremental re-solve layer: a `DeltaSession`
//! driven by a random edit sequence must agree with a cold solve of the
//! final (patched) instance at every step — same chosen IMPs, same area,
//! same optimality status, and a clean independent audit — and a poisoned
//! retained basis must degrade to a cold solve, never to a silently wrong
//! answer.

use std::sync::Arc;

use proptest::prelude::*;

use partita_core::{
    delta::{DeltaSession, InstanceDelta},
    CoreError, FaultPlan, FaultVerdict, Imp, ImpDb, Instance, ParallelChoice, RequiredGains, SCall,
    Selection, SelectionAuditor, SolveOptions, Solver,
};
use partita_interface::{InterfaceKind, TransferJob};
use partita_ip::{IpBlock, IpFunction, IpId};
use partita_mop::{AreaTenths, CallSiteId, Cycles};

#[derive(Debug, Clone)]
struct SmallInstance {
    ip_areas: Vec<i64>,
    /// (scall, ip, gain, interface tenths, interface kind)
    imps: Vec<(u32, u32, u64, i64, u8)>,
    required: u64,
}

/// One random edit, in pre-resolution form (ids are mod-mapped onto the
/// instance when applied).
#[derive(Debug, Clone)]
enum DeltaSpec {
    SetRg(u64),
    RemoveIp(u32),
    BanKind(u8),
    RestoreKind(u8),
    AddIp(i64, u64),
}

const KINDS: [InterfaceKind; 4] = [
    InterfaceKind::Type0,
    InterfaceKind::Type1,
    InterfaceKind::Type2,
    InterfaceKind::Type3,
];

fn small_instance() -> impl Strategy<Value = SmallInstance> {
    (
        proptest::collection::vec(1i64..20, 2..4),
        proptest::collection::vec((0u32..4, 0u32..3, 1u64..200, 0i64..10, 0u8..4), 2..8),
        0u64..400,
    )
        .prop_map(|(ip_areas, mut imps, required)| {
            let n_ips = ip_areas.len() as u32;
            for imp in &mut imps {
                imp.1 %= n_ips;
            }
            SmallInstance {
                ip_areas,
                imps,
                required,
            }
        })
}

fn delta_seq() -> impl Strategy<Value = Vec<DeltaSpec>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..500).prop_map(DeltaSpec::SetRg),
            (0u32..4).prop_map(DeltaSpec::RemoveIp),
            (0u8..4).prop_map(DeltaSpec::BanKind),
            (0u8..4).prop_map(DeltaSpec::RestoreKind),
            (1i64..10, 50u64..300).prop_map(|(a, g)| DeltaSpec::AddIp(a, g)),
        ],
        1..6,
    )
}

fn build(si: &SmallInstance) -> (Instance, ImpDb) {
    let mut inst = Instance::new("prop-delta");
    for (i, &a) in si.ip_areas.iter().enumerate() {
        inst.library.add(
            IpBlock::builder(format!("ip{i}"))
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(a))
                .build(),
        );
    }
    for sc in 0..4u32 {
        inst.add_scall(SCall::new(
            format!("f{sc}"),
            IpFunction::Fir,
            Cycles(1000),
            TransferJob::new(8, 8),
        ));
    }
    inst.add_path((0..4).map(CallSiteId).collect());
    let imps = si
        .imps
        .iter()
        .map(|&(sc, ip, gain, tenths, kind)| {
            Imp::new(
                CallSiteId(sc),
                vec![IpId(ip)],
                KINDS[kind as usize % KINDS.len()],
                Cycles(gain),
                AreaTenths::from_tenths(tenths),
                ParallelChoice::None,
            )
        })
        .collect();
    (inst, ImpDb::from_imps(imps))
}

fn resolve_spec(spec: &DeltaSpec, session: &DeltaSession, next_ip: &mut u32) -> InstanceDelta {
    match spec {
        DeltaSpec::SetRg(rg) => InstanceDelta::SetRg(RequiredGains::uniform(Cycles(*rg))),
        DeltaSpec::RemoveIp(ip) => {
            let n = session.instance().library.len() as u32;
            InstanceDelta::RemoveIp(IpId(ip % n.max(1)))
        }
        DeltaSpec::BanKind(k) => {
            InstanceDelta::SetInterfaceKind(KINDS[*k as usize % KINDS.len()], false)
        }
        DeltaSpec::RestoreKind(k) => {
            InstanceDelta::SetInterfaceKind(KINDS[*k as usize % KINDS.len()], true)
        }
        DeltaSpec::AddIp(area, gain) => {
            *next_ip += 1;
            // The gain rides in via the timing model: give the block real
            // rates/latency so generated variants are meaningful, and keep
            // the name unique so provenance stays unambiguous.
            let _ = gain;
            InstanceDelta::AddIp(
                IpBlock::builder(format!("added{next_ip}"))
                    .function(IpFunction::Fir)
                    .rates(4, 4)
                    .latency(8)
                    .area(AreaTenths::from_units(*area))
                    .build(),
            )
        }
    }
}

/// Cold oracle: a fresh solver over the session's current (patched)
/// instance and database.
fn cold(session: &DeltaSession) -> Result<Selection, CoreError> {
    Solver::new(session.instance())
        .with_imps(Arc::clone(session.db()))
        .solve(session.options())
}

fn assert_agrees(warm: &Result<Selection, CoreError>, session: &DeltaSession, ctx: &str) {
    let reference = cold(session);
    match (warm, &reference) {
        (Ok(w), Ok(c)) => {
            assert_eq!(w.chosen(), c.chosen(), "{ctx}: chosen IMPs diverged");
            assert_eq!(w.total_area(), c.total_area(), "{ctx}: area diverged");
            assert_eq!(w.status, c.status, "{ctx}: status diverged");
            let report =
                SelectionAuditor::new(session.instance(), session.db()).audit(w, session.options());
            assert!(
                report.is_clean(),
                "{ctx}: audit violations {}",
                report.to_json()
            );
        }
        (Err(CoreError::Infeasible { .. }), Err(CoreError::Infeasible { .. })) => {}
        other => panic!("{ctx}: delta vs cold verdicts diverged: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random delta sequence, resolved after every edit, matches a
    /// cold solve of the session's current instance + database.
    #[test]
    fn delta_sequence_matches_cold_solve(si in small_instance(), seq in delta_seq()) {
        let (inst, db) = build(&si);
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(si.required)));
        let mut session = DeltaSession::new(inst, db, opts).unwrap();
        let first = session.resolve();
        assert_agrees(&first, &session, "initial resolve");
        let mut next_ip = 0u32;
        for (i, spec) in seq.iter().enumerate() {
            let delta = resolve_spec(spec, &session, &mut next_ip);
            session.apply(delta).unwrap();
            let warm = session.resolve();
            assert_agrees(&warm, &session, &format!("after delta {i} ({spec:?})"));
        }
    }

    /// A poisoned retained basis — wrong shape, foreign model, or an
    /// all-slack stub — may cost performance but never changes the answer:
    /// the solve either matches the clean reference or refuses with a
    /// typed error. Silent infeasibility is the failure class under test.
    #[test]
    fn poisoned_basis_is_never_silently_wrong(
        si in small_instance(),
        nv in 0usize..40,
        rows in 0usize..25,
    ) {
        let (inst, db) = build(&si);
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(si.required)));
        let reference = Solver::new(&inst).with_imps(&db).solve(&opts);
        let verdict = FaultPlan::new()
            .poisoned_basis(partita_ilp::Basis::slack(nv, rows))
            .run(&inst, &db, &opts);
        prop_assert!(verdict.is_sound(), "silently wrong: {verdict:?}");
        match (&verdict, &reference) {
            (FaultVerdict::Clean(sel, report), Ok(clean)) => {
                prop_assert!(report.is_clean());
                prop_assert_eq!(sel.chosen(), clean.chosen());
                prop_assert_eq!(sel.total_area(), clean.total_area());
            }
            (FaultVerdict::TypedError(CoreError::Infeasible { .. }),
             Err(CoreError::Infeasible { .. })) => {}
            other => panic!("poisoned-basis verdict diverged from reference: {other:?}"),
        }
    }
}
