//! Property tests: the ILP selector against exhaustive enumeration on small
//! random instances, and its structural invariants on larger ones.

use proptest::prelude::*;

use partita_core::{
    baseline, Backend, FaultPlan, Imp, ImpDb, ImpId, Instance, OptimalityStatus, ParallelChoice,
    RequiredGains, SCall, SelectionAuditor, SolveOptions, Solver,
};
use partita_interface::{InterfaceKind, TransferJob};
use partita_ip::{IpBlock, IpFunction, IpId};
use partita_mop::{AreaTenths, CallSiteId, Cycles, PathId};

#[derive(Debug, Clone)]
struct SmallInstance {
    ip_areas: Vec<i64>,
    imps: Vec<(u32, u32, u64, i64)>, // (scall, ip, gain, interface tenths)
    required: u64,
}

fn small_instance() -> impl Strategy<Value = SmallInstance> {
    (
        proptest::collection::vec(1i64..20, 2..4),
        proptest::collection::vec((0u32..4, 0u32..3, 1u64..200, 0i64..10), 1..8),
        0u64..400,
    )
        .prop_map(|(ip_areas, mut imps, required)| {
            let n_ips = ip_areas.len() as u32;
            for imp in &mut imps {
                imp.1 %= n_ips;
            }
            SmallInstance {
                ip_areas,
                imps,
                required,
            }
        })
}

fn build(si: &SmallInstance) -> (Instance, ImpDb) {
    let mut inst = Instance::new("prop");
    for (i, &a) in si.ip_areas.iter().enumerate() {
        inst.library.add(
            IpBlock::builder(format!("ip{i}"))
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(a))
                .build(),
        );
    }
    for sc in 0..4u32 {
        inst.add_scall(SCall::new(
            format!("f{sc}"),
            IpFunction::Fir,
            Cycles(1000),
            TransferJob::new(8, 8),
        ));
    }
    inst.add_path((0..4).map(CallSiteId).collect());
    let imps = si
        .imps
        .iter()
        .map(|&(sc, ip, gain, tenths)| {
            Imp::new(
                CallSiteId(sc),
                vec![IpId(ip)],
                InterfaceKind::Type0,
                Cycles(gain),
                AreaTenths::from_tenths(tenths),
                ParallelChoice::None,
            )
        })
        .collect();
    (inst, ImpDb::from_imps(imps))
}

/// Exhaustive reference: try every subset of IMPs that respects "one IMP per
/// s-call" and find the minimum total area meeting the requirement.
fn exhaustive_best(inst: &Instance, db: &ImpDb, required: u64) -> Option<i64> {
    let n = db.len();
    let mut best: Option<i64> = None;
    'outer: for mask in 0u32..(1 << n) {
        let mut per_scall = [0u8; 8];
        let mut gain = 0u64;
        let mut tenths = 0i64;
        let mut ips: Vec<IpId> = Vec::new();
        for (i, imp) in db.imps().iter().enumerate() {
            if mask & (1 << i) != 0 {
                per_scall[imp.scall.index()] += 1;
                if per_scall[imp.scall.index()] > 1 {
                    continue 'outer;
                }
                gain += imp.gain.get();
                tenths += imp.interface_area.tenths();
                ips.extend(imp.ips.iter().copied());
            }
        }
        if gain < required {
            continue;
        }
        ips.sort_unstable();
        ips.dedup();
        tenths += ips
            .iter()
            .map(|&ip| inst.library.block(ip).map_or(0, |b| b.area().tenths()))
            .sum::<i64>();
        best = Some(best.map_or(tenths, |b: i64| b.min(tenths)));
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ILP's minimum area equals brute force over all subsets.
    #[test]
    fn selector_matches_exhaustive(si in small_instance()) {
        let (inst, db) = build(&si);
        let exact = exhaustive_best(&inst, &db, si.required);
        let solved = Solver::new(&inst)
            .with_imps(db.clone())
            .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(si.required))));
        match (exact, solved) {
            (Some(area), Ok(sel)) => {
                prop_assert_eq!(
                    sel.total_area().tenths(), area,
                    "ilp found area {} vs brute force {}", sel.total_area(), area
                );
                prop_assert!(sel.total_gain().get() >= si.required);
                let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(si.required)));
                prop_assert!(sel.verify(&inst, &opts).is_ok());
                // Independent audit oracle alongside the built-in verify.
                let report = SelectionAuditor::new(&inst, &db).audit(&sel, &opts);
                prop_assert!(report.is_clean(), "audit violations: {}", report.to_json());
            }
            (None, Err(_)) => {}
            (e, s) => prop_assert!(false, "feasibility mismatch: {e:?} vs {s:?}"),
        }
    }

    /// Feasible greedy never beats the ILP; merged S-count never exceeds the
    /// selected-call count.
    #[test]
    fn greedy_dominated_and_counts_consistent(si in small_instance()) {
        let (inst, db) = build(&si);
        let gains = RequiredGains::uniform(Cycles(si.required));
        let Ok(sel) = Solver::new(&inst).with_imps(db.clone())
            .solve(&SolveOptions::problem2(gains.clone())) else { return Ok(()); };
        prop_assert!(sel.s_instruction_count() <= sel.selected_scall_count());
        if let Ok(greedy) = baseline::solve_greedy(&inst, &db, &gains) {
            prop_assert!(sel.total_area() <= greedy.total_area());
        }
    }

    /// The warm-started branch-and-bound backend under its (generous)
    /// default budget agrees with the exhaustive backend: same minimum area,
    /// same feasibility verdict, both proven optimal.
    #[test]
    fn branch_bound_backend_matches_exhaustive_backend(si in small_instance()) {
        let (inst, db) = build(&si);
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(si.required)));
        let bb = Solver::new(&inst).with_imps(db.clone()).solve(&opts);
        let ex = Solver::new(&inst)
            .with_imps(db)
            .solve(&opts.clone().backend(Backend::Exhaustive));
        match (bb, ex) {
            (Ok(b), Ok(e)) => {
                prop_assert_eq!(
                    b.total_area().tenths(), e.total_area().tenths(),
                    "branch-and-bound area {} vs exhaustive {}", b.total_area(), e.total_area()
                );
                prop_assert_eq!(b.status, OptimalityStatus::Optimal);
                prop_assert_eq!(e.status, OptimalityStatus::Optimal);
                prop_assert!(e.trace.nodes_explored >= 1);
            }
            (Err(_), Err(_)) => {}
            (b, e) => prop_assert!(false, "backend feasibility mismatch: {b:?} vs {e:?}"),
        }
    }

    /// Under every injected fault — node-cap exhaustion, an expired
    /// deadline, a poisoned warm-start hint, fallback disabled — the solver
    /// either returns an audit-clean feasible selection or a typed error.
    /// It never silently hands back an infeasible or tampered selection.
    #[test]
    fn fault_injection_never_silently_infeasible(si in small_instance(), which in 0usize..6) {
        let (inst, db) = build(&si);
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(si.required)));
        let plan = match which {
            0 => FaultPlan::new().node_cap(1),
            1 => FaultPlan::new().node_cap(1).without_fallback(),
            2 => FaultPlan::new().deadline(std::time::Duration::ZERO),
            3 => FaultPlan::new().poisoned_hint(vec![ImpId(999)]),
            4 => FaultPlan::new().without_warm_start(),
            _ => FaultPlan::new()
                .node_cap(1)
                .poisoned_hint(vec![ImpId(999)])
                .without_warm_start(),
        };
        let verdict = plan.run(&inst, &db, &opts);
        prop_assert!(verdict.is_sound(), "unsound degraded solve: {verdict:?}");
    }

    /// Per-path requirements on path 0 only: the solved selection must pass
    /// the audit, whose per-path gain check re-walks every path from the raw
    /// instance rather than trusting the ILP constraint rows.
    #[test]
    fn per_path_requirements_audit_clean(si in small_instance()) {
        let (inst, db) = build(&si);
        let opts = SolveOptions::problem2(RequiredGains::per_path([(
            PathId(0),
            Cycles(si.required),
        )]));
        if let Ok(sel) = Solver::new(&inst).with_imps(db.clone()).solve(&opts) {
            let report = SelectionAuditor::new(&inst, &db).audit(&sel, &opts);
            prop_assert!(report.is_clean(), "audit violations: {}", report.to_json());
        }
    }
}
