//! Problem instances: s-calls, execution paths, the IP library.

use partita_interface::{AreaModel, TransferJob};
use partita_ip::{IpFunction, IpLibrary};
use partita_mop::{CallSiteId, Cycles, PathId};

/// One *s-call*: a call site whose callee can be implemented by an IP
/// (Definition 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SCall {
    /// Identifier (`SC1`, `SC2`, … in the tables).
    pub id: CallSiteId,
    /// The callee's name (e.g. `"fir"`).
    pub name: String,
    /// The DSP function the callee computes, used to match library IPs.
    pub function: IpFunction,
    /// Software execution time of **one** invocation (`T_SW`).
    pub sw_cycles: Cycles,
    /// Data moved per invocation.
    pub job: TransferJob,
    /// Profiled execution frequency (invocations on the hot run).
    pub freq: u64,
    /// Longest plain parallel code available after this call (`PC_i` of
    /// Definition 5, already minimised over execution paths), excluding
    /// other s-calls.
    pub plain_pc: Cycles,
    /// S-calls whose *software implementation* may extend this call's
    /// parallel code (the Problem 2 generalisation), in appendable order.
    pub sw_pc_candidates: Vec<CallSiteId>,
}

impl SCall {
    /// Creates an s-call with frequency 1 and no parallel-code information.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        function: IpFunction,
        sw_cycles: Cycles,
        job: TransferJob,
    ) -> SCall {
        SCall {
            id: CallSiteId(0),
            name: name.into(),
            function,
            sw_cycles,
            job,
            freq: 1,
            plain_pc: Cycles::ZERO,
            sw_pc_candidates: Vec::new(),
        }
    }

    /// Sets the profiled frequency.
    #[must_use]
    pub fn with_freq(mut self, freq: u64) -> SCall {
        self.freq = freq;
        self
    }

    /// Sets the plain parallel-code length.
    #[must_use]
    pub fn with_plain_pc(mut self, pc: Cycles) -> SCall {
        self.plain_pc = pc;
        self
    }

    /// Declares s-calls whose software implementations can extend this
    /// call's parallel code.
    #[must_use]
    pub fn with_sw_pc_candidates(mut self, candidates: Vec<CallSiteId>) -> SCall {
        self.sw_pc_candidates = candidates;
        self
    }

    /// Total software time over all invocations (`T_SW × freq`).
    #[must_use]
    pub fn total_sw_cycles(&self) -> Cycles {
        self.sw_cycles.scaled(self.freq)
    }
}

/// An execution path: the s-calls that lie on it, in order (Fig. 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSpec {
    /// Path identifier.
    pub id: PathId,
    /// S-calls on the path.
    pub scalls: Vec<CallSiteId>,
}

/// A complete selection-problem instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance name (for reports).
    pub name: String,
    /// All s-calls, indexed by [`CallSiteId`].
    pub scalls: Vec<SCall>,
    /// The IP library.
    pub library: IpLibrary,
    /// Execution paths (every path gets a required-gain constraint, Eq. 2).
    pub paths: Vec<PathSpec>,
    /// Interface area coefficients.
    pub area_model: AreaModel,
}

impl Instance {
    /// Creates an empty instance.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Instance {
        Instance {
            name: name.into(),
            scalls: Vec::new(),
            library: IpLibrary::new(),
            paths: Vec::new(),
            area_model: AreaModel::default(),
        }
    }

    /// Adds an s-call, assigning its id.
    pub fn add_scall(&mut self, mut scall: SCall) -> CallSiteId {
        let id = CallSiteId::from_index(self.scalls.len());
        scall.id = id;
        self.scalls.push(scall);
        id
    }

    /// Adds an execution path over the given s-calls.
    pub fn add_path(&mut self, scalls: Vec<CallSiteId>) -> PathId {
        let id = PathId::from_index(self.paths.len());
        self.paths.push(PathSpec { id, scalls });
        id
    }

    /// Looks up an s-call.
    #[must_use]
    pub fn scall(&self, id: CallSiteId) -> Option<&SCall> {
        self.scalls.get(id.index())
    }

    /// If the instance has no explicit paths, every s-call is considered to
    /// lie on one implicit path; this returns the effective path list.
    #[must_use]
    pub fn effective_paths(&self) -> Vec<PathSpec> {
        if self.paths.is_empty() {
            vec![PathSpec {
                id: PathId(0),
                scalls: self.scalls.iter().map(|s| s.id).collect(),
            }]
        } else {
            self.paths.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scall_ids_assigned_in_order() {
        let mut inst = Instance::new("t");
        let a = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            Cycles(100),
            TransferJob::new(8, 8),
        ));
        let b = inst.add_scall(SCall::new(
            "dct",
            IpFunction::Dct1d,
            Cycles(200),
            TransferJob::new(8, 8),
        ));
        assert_eq!(a, CallSiteId(0));
        assert_eq!(b, CallSiteId(1));
        assert_eq!(inst.scall(b).unwrap().name, "dct");
        assert!(inst.scall(CallSiteId(9)).is_none());
    }

    #[test]
    fn total_sw_scales_with_frequency() {
        let sc =
            SCall::new("fir", IpFunction::Fir, Cycles(100), TransferJob::new(8, 8)).with_freq(7);
        assert_eq!(sc.total_sw_cycles(), Cycles(700));
    }

    #[test]
    fn implicit_path_covers_all_scalls() {
        let mut inst = Instance::new("t");
        let a = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            Cycles(1),
            TransferJob::new(2, 2),
        ));
        let paths = inst.effective_paths();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].scalls, vec![a]);
        inst.add_path(vec![a]);
        inst.add_path(vec![]);
        assert_eq!(inst.effective_paths().len(), 2);
    }

    #[test]
    fn builder_setters() {
        let sc = SCall::new("iir", IpFunction::Iir, Cycles(10), TransferJob::new(4, 4))
            .with_plain_pc(Cycles(5))
            .with_sw_pc_candidates(vec![CallSiteId(3)]);
        assert_eq!(sc.plain_pc, Cycles(5));
        assert_eq!(sc.sw_pc_candidates, vec![CallSiteId(3)]);
    }
}
