//! Parallel-code discovery (paper Definitions 3–5).
//!
//! Given the CDFG of a function, a µ-operation is *independent code* to an
//! s-call when it has no transitive-closure dependency edge with it
//! (Definition 3, [`partita_mop::Cdfg::independent_mops`]). An *independent
//! code segment* (ICS) is a maximal run of independent µ-operations inside
//! one execution branch (Definition 4). The *parallel code* `PC_i` is the
//! largest ICS that can be arranged right after the s-call — and when
//! several execution paths follow the call, the **shortest** of the per-path
//! maxima, "to guarantee the minimum performance gain for all execution
//! paths" (Definition 5).

use partita_frontend::CompiledProgram;
use partita_mop::{
    enumerate_paths, CallSiteId, Cdfg, CdfgOptions, Cycles, Function, MopId, PathEnumLimits,
};

use crate::CoreError;

/// The parallel-code analysis result for one s-call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelCodeInfo {
    /// `PC_i` length in cycles (one cycle per µ-operation; the interface
    /// templates re-pack them on emission).
    pub cycles: Cycles,
    /// The µ-operations of the binding segment (the shortest path's largest
    /// ICS), in program order.
    pub mops: Vec<MopId>,
    /// Call µ-operations independent of the s-call — their **software
    /// implementations** are Problem 2 parallel-code candidates.
    pub sw_candidate_mops: Vec<MopId>,
}

/// Analyses the parallel code of the s-call at `scall_mop` inside `func`.
///
/// # Errors
///
/// [`CoreError::UnknownSCall`] when `scall_mop` is not a call in `func`;
/// path-enumeration failures surface as an empty-path fallback (single
/// implicit path).
pub fn analyze(
    func: &Function,
    opts: &CdfgOptions,
    scall_mop: MopId,
) -> Result<ParallelCodeInfo, CoreError> {
    let is_call = func.mop(scall_mop).ok().and_then(|m| m.callee()).is_some();
    if !is_call {
        return Err(CoreError::UnknownSCall(CallSiteId(scall_mop.0)));
    }
    let cdfg = Cdfg::build(func, opts);
    let independent: std::collections::BTreeSet<MopId> =
        cdfg.independent_mops(scall_mop).into_iter().collect();

    // Locate the s-call's block and its index within the block.
    let (scall_block, scall_idx) = func
        .blocks()
        .iter()
        .find_map(|b| {
            b.mops()
                .iter()
                .position(|&m| m == scall_mop)
                .map(|i| (b.id(), i))
        })
        .ok_or(CoreError::UnknownSCall(CallSiteId(scall_mop.0)))?;

    // Independent calls anywhere in the function are Problem 2 candidates.
    let sw_candidate_mops: Vec<MopId> = func
        .call_mops()
        .into_iter()
        .filter(|&(_, m, _)| m != scall_mop && independent.contains(&m))
        .map(|(_, m, _)| m)
        .collect();

    // Enumerate execution paths through the s-call's block.
    let paths = enumerate_paths(func, PathEnumLimits::default()).unwrap_or_default();
    let relevant: Vec<_> = paths.iter().filter(|p| p.contains(scall_block)).collect();

    // Per path: the largest ICS at-or-after the s-call.
    let mut binding: Option<(Cycles, Vec<MopId>)> = None;
    let path_segments = |blocks: &[partita_mop::BlockId]| -> (Cycles, Vec<MopId>) {
        let start = blocks.iter().position(|&b| b == scall_block).unwrap_or(0);
        let mut best: Vec<MopId> = Vec::new();
        for &b in &blocks[start..] {
            let Ok(block) = func.block(b) else { continue };
            let from = if b == scall_block { scall_idx + 1 } else { 0 };
            let mut run: Vec<MopId> = Vec::new();
            for &m in &block.mops()[from.min(block.mops().len())..] {
                let is_call = func.mop(m).ok().and_then(|x| x.callee()).is_some();
                let is_control = func.mop(m).map(|x| x.is_control()).unwrap_or(true);
                if independent.contains(&m) && !is_call && !is_control {
                    run.push(m);
                } else {
                    if run.len() > best.len() {
                        best = std::mem::take(&mut run);
                    }
                    run.clear();
                }
            }
            if run.len() > best.len() {
                best = run;
            }
        }
        (Cycles(best.len() as u64), best)
    };

    if relevant.is_empty() {
        // No enumerable path (e.g. the call sits inside a loop body cut by
        // the enumerator): fall back to the whole-function view.
        let all_blocks: Vec<_> = func.blocks().iter().map(|b| b.id()).collect();
        let (c, mops) = path_segments(&all_blocks);
        return Ok(ParallelCodeInfo {
            cycles: c,
            mops,
            sw_candidate_mops,
        });
    }
    for p in relevant {
        let (c, mops) = path_segments(&p.blocks);
        let replace = match &binding {
            None => true,
            Some((bc, _)) => c < *bc,
        };
        if replace {
            binding = Some((c, mops));
        }
    }
    let (cycles, mops) = binding.unwrap_or((Cycles::ZERO, Vec::new()));
    Ok(ParallelCodeInfo {
        cycles,
        mops,
        sw_candidate_mops,
    })
}

/// Convenience wrapper: analyses every call site of one function in a
/// [`CompiledProgram`], returning `(call mop, info)` pairs.
///
/// # Errors
///
/// Propagates [`analyze`] failures.
pub fn analyze_function(
    compiled: &CompiledProgram,
    func_id: partita_mop::FuncId,
) -> Result<Vec<(MopId, ParallelCodeInfo)>, CoreError> {
    let func = compiled
        .program
        .function(func_id)
        .map_err(|_| CoreError::UnknownSCall(CallSiteId(0)))?;
    let opts = compiled.cdfg_options(func_id);
    func.call_mops()
        .into_iter()
        .map(|(_, m, _)| analyze(func, &opts, m).map(|info| (m, info)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_frontend::compile;
    use partita_mop::{AluOp, Mop, Reg};

    #[test]
    fn independent_tail_becomes_parallel_code() {
        // call f; then 3 mops independent of it; then dependent code.
        let mut f = Function::new("main");
        let b = f.add_block();
        let call = f.push_mop(b, Mop::call(partita_mop::FuncId(1)));
        f.push_mop(b, Mop::load_imm(Reg(1), 1));
        f.push_mop(b, Mop::alu(AluOp::Add, Reg(1), Reg(1), 1));
        f.push_mop(b, Mop::load_imm(Reg(2), 2));
        f.push_mop(b, Mop::load_x(Reg(3), 0)); // memory: conflicts with call
        f.push_mop(b, Mop::halt());
        f.compute_edges();
        let mut opts = CdfgOptions::default();
        opts.call_effects.insert(
            call,
            partita_mop::CallEffects::new(
                vec![],
                vec![partita_mop::MemRegion::new(partita_mop::MemSpace::X, 0, 8)],
            ),
        );
        let info = analyze(&f, &opts, call).unwrap();
        assert_eq!(info.cycles, Cycles(3));
        assert_eq!(info.mops.len(), 3);
        assert!(info.sw_candidate_mops.is_empty());
    }

    #[test]
    fn multiple_paths_take_the_minimum() {
        // After the call, a branch: one arm has 4 independent mops, the
        // other only 1 → PC must be 1 (Definition 5's min over paths).
        let mut f = Function::new("main");
        let b0 = f.add_block();
        let long = f.add_block();
        let short = f.add_block();
        let end = f.add_block();
        let call = f.push_mop(b0, Mop::call(partita_mop::FuncId(1)));
        f.push_mop(b0, Mop::load_imm(Reg(0), 1));
        f.push_mop(b0, Mop::branch_nz(Reg(0), long, short));
        for i in 0..4 {
            f.push_mop(long, Mop::load_imm(Reg(2), i));
        }
        f.push_mop(long, Mop::jump(end));
        f.push_mop(short, Mop::load_imm(Reg(3), 9));
        f.push_mop(short, Mop::jump(end));
        f.push_mop(end, Mop::halt());
        f.compute_edges();
        let mut opts = CdfgOptions::default();
        opts.call_effects
            .insert(call, partita_mop::CallEffects::default());
        let info = analyze(&f, &opts, call).unwrap();
        assert_eq!(info.cycles, Cycles(1));
    }

    #[test]
    fn independent_calls_are_problem2_candidates() {
        let src = "xmem a[8] @ 0; ymem b[8] @ 0; xmem c[8] @ 16;
            fn fir() reads a writes b { }
            fn iir() reads c writes c { }
            fn main() { fir(); iir(); }";
        let compiled = compile(src).unwrap();
        let main = compiled.program.function_by_name("main").unwrap();
        let infos = analyze_function(&compiled, main).unwrap();
        assert_eq!(infos.len(), 2);
        // fir and iir touch disjoint regions: each is a sw-PC candidate of
        // the other.
        assert_eq!(infos[0].1.sw_candidate_mops.len(), 1);
        assert_eq!(infos[1].1.sw_candidate_mops.len(), 1);
    }

    #[test]
    fn dependent_calls_are_not_candidates() {
        let src = "xmem a[8] @ 0; ymem b[8] @ 0;
            fn fir() reads a writes b { }
            fn dct() reads b writes a { }
            fn main() { fir(); dct(); }";
        let compiled = compile(src).unwrap();
        let main = compiled.program.function_by_name("main").unwrap();
        let infos = analyze_function(&compiled, main).unwrap();
        assert!(infos[0].1.sw_candidate_mops.is_empty());
        assert!(infos[1].1.sw_candidate_mops.is_empty());
    }

    #[test]
    fn non_call_mop_rejected() {
        let mut f = Function::new("main");
        let b = f.add_block();
        let m = f.push_mop(b, Mop::nop());
        f.compute_edges();
        assert!(matches!(
            analyze(&f, &CdfgOptions::default(), m),
            Err(CoreError::UnknownSCall(_))
        ));
    }

    #[test]
    fn code_before_call_not_counted() {
        let mut f = Function::new("main");
        let b = f.add_block();
        f.push_mop(b, Mop::load_imm(Reg(1), 1));
        f.push_mop(b, Mop::load_imm(Reg(2), 2));
        let call = f.push_mop(b, Mop::call(partita_mop::FuncId(1)));
        f.push_mop(b, Mop::halt());
        f.compute_edges();
        let mut opts = CdfgOptions::default();
        opts.call_effects
            .insert(call, partita_mop::CallEffects::default());
        let info = analyze(&f, &opts, call).unwrap();
        // The independent mops exist but sit before the call; PC needs code
        // that can run *after* it.
        assert_eq!(info.cycles, Cycles::ZERO);
    }
}
