//! Paper-style table rendering (Tables 1–3) and solve-trace reports.

use partita_ip::IpLibrary;
use partita_mop::Cycles;

use crate::{Selection, SolveTrace};

/// One row of a results table: a required gain and the selection found.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// The required gain (**RG** column).
    pub required_gain: Cycles,
    /// Rendered implementation methods.
    pub methods: String,
    /// Achieved gain (**G**).
    pub gain: Cycles,
    /// Total area (**A**), rendered with the paper's fractional style.
    pub area: String,
    /// S-instruction count (**S**).
    pub s_count: usize,
    /// Selected s-call count (**O**).
    pub o_count: usize,
}

impl TableRow {
    /// Builds a row from a solved selection.
    #[must_use]
    pub fn from_selection(required_gain: Cycles, selection: &Selection) -> TableRow {
        let mut methods: Vec<String> = selection
            .chosen()
            .iter()
            .map(|imp| format!("{imp}").replace("sc", "SC"))
            .collect();
        methods.sort();
        TableRow {
            required_gain,
            methods: methods.join(", "),
            gain: selection.total_gain(),
            area: selection.total_area().to_string(),
            s_count: selection.s_instruction_count(),
            o_count: selection.selected_scall_count(),
        }
    }

    /// Like [`TableRow::from_selection`], but renders each method's area the
    /// way the paper's tables do — interface area plus the areas of the IPs
    /// the method instantiates (`SC13: IP12,IF0,115037,3`).
    #[must_use]
    pub fn from_selection_with_library(
        required_gain: Cycles,
        selection: &Selection,
        library: &IpLibrary,
    ) -> TableRow {
        let mut methods: Vec<String> = selection
            .chosen()
            .iter()
            .map(|imp| {
                let ip_area: partita_mop::AreaTenths = imp
                    .ips
                    .iter()
                    .filter_map(|&ip| library.block(ip))
                    .map(|b| b.area())
                    .sum();
                let ips = imp
                    .ips
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("+");
                format!(
                    "SC{}: {ips},{},{},{}",
                    imp.scall.0,
                    imp.interface,
                    imp.gain.get(),
                    ip_area + imp.interface_area
                )
            })
            .collect();
        methods.sort();
        TableRow {
            required_gain,
            methods: methods.join(", "),
            gain: selection.total_gain(),
            area: selection.total_area().to_string(),
            s_count: selection.s_instruction_count(),
            o_count: selection.selected_scall_count(),
        }
    }
}

/// Renders rows as a fixed-width text table with the paper's column names.
#[must_use]
pub fn render_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:>10} | {:>10} | {:>6} | {:>2} | {:>2} | methods\n",
        "RG", "G", "A", "S", "O"
    ));
    out.push_str(&"-".repeat(100));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:>10} | {:>10} | {:>6} | {:>2} | {:>2} | {}\n",
            r.required_gain.get(),
            r.gain.get(),
            r.area,
            r.s_count,
            r.o_count,
            r.methods
        ));
    }
    out
}

/// Renders a [`SolveTrace`] as a short human-readable block: backend and
/// status, model dimensions, search effort and per-phase wall times.
#[must_use]
pub fn render_trace(trace: &SolveTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "solve: backend={} status={}\n",
        trace.backend, trace.status
    ));
    out.push_str(&format!(
        "model: {} vars, {} constraints, {} imps\n",
        trace.num_vars, trace.num_constraints, trace.num_imps
    ));
    out.push_str(&format!(
        "search: {} nodes explored, {} pruned, {} incumbent updates, {} simplex iterations{}\n",
        trace.nodes_explored,
        trace.nodes_pruned,
        trace.incumbent_updates,
        trace.simplex_iterations,
        if trace.warm_start_accepted {
            format!(
                ", warm-started ({} vars fixed by probing)",
                trace.vars_fixed
            )
        } else {
            String::new()
        }
    ));
    out.push_str(&format!(
        "time: imp-gen {:?}, formulate {:?}, solve {:?}, decode {:?} (total {:?})\n",
        trace.imp_generation,
        trace.formulation,
        trace.solve,
        trace.decode,
        trace.total()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Imp, Instance, OptimalityStatus, ParallelChoice, Selection};
    use partita_interface::InterfaceKind;
    use partita_ip::IpId;
    use partita_mop::{AreaTenths, CallSiteId};

    #[test]
    fn row_rendering_matches_paper_style() {
        let inst = Instance::new("t");
        let chosen = vec![Imp::new(
            CallSiteId(13),
            vec![IpId(12)],
            InterfaceKind::Type0,
            Cycles(115_037),
            AreaTenths::from_units(3),
            ParallelChoice::None,
        )];
        let sel = Selection::from_chosen(&inst, chosen, 30.0, OptimalityStatus::Optimal);
        let row = TableRow::from_selection(Cycles(47_740), &sel);
        assert!(row.methods.contains("SC13: IP12,IF0,115037,3"));
        assert_eq!(row.gain, Cycles(115_037));
        assert_eq!(row.s_count, 1);
        assert_eq!(row.o_count, 1);
        let table = render_table("GSM encoder", &[row]);
        assert!(table.contains("RG"));
        assert!(table.contains("47740"));
    }

    #[test]
    fn library_aware_rendering_includes_ip_area() {
        use partita_ip::{IpBlock, IpFunction};
        let mut inst = Instance::new("t");
        inst.library.add(
            IpBlock::builder("st_filter")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(3))
                .build(),
        );
        let chosen = vec![Imp::new(
            CallSiteId(13),
            vec![IpId(0)],
            InterfaceKind::Type0,
            Cycles(115_037),
            AreaTenths::ZERO,
            ParallelChoice::None,
        )];
        let sel = Selection::from_chosen(&inst, chosen, 30.0, OptimalityStatus::Optimal);
        let row = TableRow::from_selection_with_library(Cycles(47_740), &sel, &inst.library);
        // The paper's style: per-method area = IP area + interface area.
        assert!(
            row.methods.contains("SC13: IP0,IF0,115037,3"),
            "{}",
            row.methods
        );
    }

    #[test]
    fn empty_table() {
        let t = render_table("empty", &[]);
        assert!(t.contains("empty"));
    }

    #[test]
    fn trace_rendering_mentions_every_section() {
        let trace = SolveTrace {
            backend: crate::Backend::BranchBound,
            status: OptimalityStatus::FeasibleBudgetExhausted,
            num_vars: 5,
            nodes_explored: 7,
            warm_start_accepted: true,
            ..SolveTrace::default()
        };
        let t = render_trace(&trace);
        assert!(t.contains("backend=branch_bound"));
        assert!(t.contains("status=feasible_budget_exhausted"));
        assert!(t.contains("7 nodes explored"));
        assert!(t.contains("warm-started"));
        assert!(t.contains("total"));
    }
}
