//! Bounded LRU memos: the sweep session's private caches and the
//! process-wide sharded cache behind the solve service.
//!
//! Keys are full canonical strings (see [`crate::sweep`]), not hashes, so a
//! cache hit can never be a collision: two requests share an entry only when
//! their canonical forms are byte-identical. Recency is tracked with a
//! monotonic tick per access; eviction scans for the stalest entry, which is
//! O(len) but irrelevant at the cache sizes the sweep layer uses.
//!
//! [`ShardedLru`] wraps N independent `Mutex<LruCache>` shards for
//! concurrent multi-tenant use. Hashing picks the shard; the *full* key
//! string still decides the hit inside it, so the no-collision guarantee
//! survives sharding. A flat hash layout wins here for the same reason the
//! retrieval micro-benchmarks in `SNIPPETS.md` show `HashMap` beating
//! ordered structures (ART/B-tree) on random point lookups: canonical keys
//! are long, high-entropy and never range-scanned, so ordered traversal
//! buys nothing and hash-based direct addressing is the fast path.

use std::collections::HashMap;
use std::sync::Mutex;

/// A least-recently-used cache over canonical string keys.
#[derive(Debug, Clone)]
pub(crate) struct LruCache<V> {
    map: HashMap<String, Entry<V>>,
    capacity: usize,
    tick: u64,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> LruCache<V> {
        LruCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            &e.value
        })
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&mut self, key: String, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(stalest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&stalest);
            }
        }
        let tick = self.tick;
        self.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A concurrent N-way sharded LRU over canonical string keys.
///
/// Each shard is an independent [`Mutex`]-guarded bounded LRU map; a key's
/// FNV-1a hash picks its shard, so unrelated keys contend on different
/// locks and a lock is only ever held for one map operation (never across
/// a solve). Values are returned by clone — callers hold cheap handles
/// (e.g. a [`crate::Selection`]), never references into a shard.
///
/// This is the store behind the solve daemon's process-wide canonical
/// cache: isomorphic instances from different tenants produce the same
/// canonical key (display names are excluded — see
/// [`crate::sweep::canonical_solve_key`]) and therefore share one entry.
///
/// ```
/// use partita_core::cache::ShardedLru;
///
/// let cache: ShardedLru<u32> = ShardedLru::new(8, 64);
/// assert_eq!(cache.shards(), 8);
/// cache.insert("some|canonical|key".to_string(), 7);
/// assert_eq!(cache.get("some|canonical|key"), Some(7));
/// assert_eq!(cache.len(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedLru<V> {
    shards: Vec<Mutex<LruCache<V>>>,
}

impl<V: Clone> ShardedLru<V> {
    /// Creates a cache of `shards` independent shards (minimum 1), each
    /// holding at most `capacity_per_shard` entries (minimum 1).
    #[must_use]
    pub fn new(shards: usize, capacity_per_shard: usize) -> ShardedLru<V> {
        ShardedLru {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(LruCache::new(capacity_per_shard)))
                .collect(),
        }
    }

    /// FNV-1a 64 shard index for `key`.
    fn shard_for(&self, key: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Looks up `key`, refreshing its recency and cloning the value on a
    /// hit. A poisoned shard (a panic while a lock was held) behaves as a
    /// miss rather than propagating the panic to unrelated tenants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<V> {
        let shard = &self.shards[self.shard_for(key)];
        shard.lock().ok()?.get(key).cloned()
    }

    /// Inserts (or replaces) `key`, evicting the stalest entry of its
    /// shard when that shard is full.
    pub fn insert(&self, key: String, value: V) {
        let shard = &self.shards[self.shard_for(&key)];
        if let Ok(mut guard) = shard.lock() {
            guard.insert(key, value);
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Live entries summed across every shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map(|g| g.len()).unwrap_or(0))
            .sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity summed across every shard.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map(|g| g.capacity()).unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_inserted_value() {
        let mut c: LruCache<u32> = LruCache::new(4);
        assert!(c.get("a").is_none());
        c.insert("a".into(), 1);
        assert_eq!(c.get("a"), Some(&1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replace_keeps_len() {
        let mut c: LruCache<u32> = LruCache::new(4);
        c.insert("a".into(), 1);
        c.insert("a".into(), 2);
        assert_eq!(c.get("a"), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_drops_least_recently_used() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        // Touch `a` so `b` is the stalest.
        assert_eq!(c.get("a"), Some(&1));
        c.insert("c".into(), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a"), Some(&1));
        assert!(c.get("b").is_none());
        assert_eq!(c.get("c"), Some(&3));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut c: LruCache<u32> = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        assert_eq!(c.len(), 1);
        assert!(c.get("a").is_none());
        assert_eq!(c.get("b"), Some(&2));
    }

    #[test]
    fn sharded_round_trips_and_counts() {
        let c: ShardedLru<u32> = ShardedLru::new(4, 8);
        assert_eq!(c.shards(), 4);
        assert!(c.is_empty());
        for i in 0..20u32 {
            c.insert(format!("key-{i}"), i);
        }
        assert_eq!(c.len(), 20);
        for i in 0..20u32 {
            assert_eq!(c.get(&format!("key-{i}")), Some(i));
        }
        assert_eq!(c.get("missing"), None);
        assert_eq!(c.capacity(), 32);
    }

    #[test]
    fn sharded_eviction_is_per_shard() {
        let c: ShardedLru<u32> = ShardedLru::new(2, 2);
        // Overfill well past total capacity; every shard stays bounded.
        for i in 0..50u32 {
            c.insert(format!("key-{i}"), i);
        }
        assert!(c.len() <= c.capacity());
    }

    #[test]
    fn sharded_is_shared_across_threads() {
        let c = std::sync::Arc::new(ShardedLru::<u64>::new(8, 64));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let c = c.clone();
                scope.spawn(move || {
                    for i in 0..32u64 {
                        // All threads write the same keyspace: last write
                        // wins, every value is one of the written ones.
                        c.insert(format!("k{i}"), t * 1000 + i);
                        let got = c.get(&format!("k{i}")).expect("just inserted");
                        assert_eq!(got % 1000, i);
                    }
                });
            }
        });
        assert_eq!(c.len(), 32);
    }
}
