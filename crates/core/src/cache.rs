//! Bounded LRU memo behind the sweep session's model and solve caches.
//!
//! Keys are full canonical strings (see `crate::sweep`), not hashes, so a
//! cache hit can never be a collision: two requests share an entry only when
//! their canonical forms are byte-identical. Recency is tracked with a
//! monotonic tick per access; eviction scans for the stalest entry, which is
//! O(len) but irrelevant at the cache sizes the sweep layer uses.

use std::collections::HashMap;

/// A least-recently-used cache over canonical string keys.
#[derive(Debug, Clone)]
pub(crate) struct LruCache<V> {
    map: HashMap<String, Entry<V>>,
    capacity: usize,
    tick: u64,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> LruCache<V> {
        LruCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            &e.value
        })
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&mut self, key: String, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(stalest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&stalest);
            }
        }
        let tick = self.tick;
        self.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_inserted_value() {
        let mut c: LruCache<u32> = LruCache::new(4);
        assert!(c.get("a").is_none());
        c.insert("a".into(), 1);
        assert_eq!(c.get("a"), Some(&1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replace_keeps_len() {
        let mut c: LruCache<u32> = LruCache::new(4);
        c.insert("a".into(), 1);
        c.insert("a".into(), 2);
        assert_eq!(c.get("a"), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_drops_least_recently_used() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        // Touch `a` so `b` is the stalest.
        assert_eq!(c.get("a"), Some(&1));
        c.insert("c".into(), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a"), Some(&1));
        assert!(c.get("b").is_none());
        assert_eq!(c.get("c"), Some(&3));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut c: LruCache<u32> = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        assert_eq!(c.len(), 1);
        assert!(c.get("a").is_none());
        assert_eq!(c.get("b"), Some(&2));
    }
}
