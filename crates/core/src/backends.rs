//! Implicit-enumeration backends over the IMP-choice structure.
//!
//! Branch-and-bound relaxes the 0/1 selection ILP *linearly* (an LP per
//! node). The two backends here relax it *combinatorially*, walking the
//! natural decision structure of the paper's problem — one slot per s-call,
//! each slot choosing "software" or one of its IMPs — with cheap additive
//! bounds instead of simplex solves:
//!
//! * [`LagrangianBackend`] dualises the per-path required-gain rows into the
//!   objective with multipliers `λ ≥ 0` tightened once by deterministic
//!   subgradient ascent at the root. Each node's bound is the classic
//!   Lagrangian decomposition: committed cost, plus `Σ_p λ_p·(T_p − g_p)`,
//!   plus an independent per-slot minimum of the reduced cost — strongest
//!   when the gain requirements are the binding structure.
//! * [`ConflictEnumBackend`] keeps the objective untouched but propagates
//!   the SC-PC conflict pairs ([`crate::sc_pc_conflicts`]) as forbidden-
//!   choice counters during the dive, never expanding a branch the conflict
//!   rows already exclude — strongest on conflict-dense instances.
//!
//! # Determinism contract
//!
//! Both backends honour the exact-solver contract of `docs/BACKENDS.md`:
//! every feasible leaf goes through the *same* incumbent rule as
//! branch-and-bound (improve by more than `1e-9`, or tie within `1e-9` and
//! win the [`partita_ilp::lex_less`] comparison on the full encoded
//! assignment), and pruning keeps ties alive (`bound > incumbent + 1e-9`).
//! A run that completes therefore reports the byte-identical selection
//! branch-and-bound reports, regardless of which backend raced it there.
//!
//! Bounds only ever *underestimate* the true completion cost (IP indicator
//! areas are non-negative and dropped; constraints the bound ignores can
//! only shrink the completion set), and leaves are verified against the
//! *model* ([`partita_ilp::Model::is_feasible`]) — so neither backend can
//! accept a point the ILP would reject, even on formulations whose extra
//! rows (power budgets, Problem 1 shape ties) the bounds know nothing
//! about.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partita_ilp::{
    lex_less, BranchBoundStats, Model, Sense, SharedBound, Termination, WorkerStats,
};
use partita_mop::CallSiteId;

use crate::engine::{
    encode_selection, status_from_termination, EngineSolution, SolveBudget, SolverBackend,
};
use crate::formulate::VarMap;
use crate::solver::RequiredGains;
use crate::{sc_pc_conflicts, CoreError, ImpDb, ImpId, Instance};

/// Tie window of the incumbent rule (matches branch-and-bound's `TIE_TOL`).
const TIE_TOL: f64 = 1e-9;

/// Leaf feasibility tolerance (matches the greedy backend's check).
const FEAS_TOL: f64 = 1e-6;

/// Slack below which a remaining-gain shortfall counts as infeasible.
const GAIN_EPS: f64 = 1e-9;

/// Subgradient-ascent iterations spent tightening `λ` at the root.
const SUBGRADIENT_ITERS: usize = 60;

/// Which node bound the shared enumeration uses — the only difference
/// between the two public backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoundKind {
    /// Additive reduced costs with conflict propagation (`λ = 0`).
    Conflict,
    /// Lagrangian reduced costs under root-trained multipliers.
    Lagrangian,
}

/// One IMP choice of a slot, with everything its bounds need.
#[derive(Debug, Clone)]
struct Choice {
    imp: ImpId,
    /// Objective coefficient of the IMP's `x` column.
    cost: f64,
    /// The IMP's gain as the model's gain rows count it.
    gain: f64,
    /// `(slot, choice)` pairs excluded while this choice is committed.
    conflicts: Vec<(usize, usize)>,
}

/// One s-call with at least one IMP column in the model. "Software"
/// (select nothing) is always available and is not listed as a choice.
#[derive(Debug, Clone)]
struct Slot {
    /// Indices into the problem's path tables containing this s-call.
    paths: Vec<usize>,
    choices: Vec<Choice>,
}

/// The enumeration view of one formulated instance.
#[derive(Debug, Clone)]
struct EnumProblem {
    slots: Vec<Slot>,
    /// Required gain per (positive-requirement) path.
    required: Vec<f64>,
    /// Lagrange multiplier per path (all zero for the conflict bound).
    lambda: Vec<f64>,
    /// `gain_ub[d][p]`: the most gain slots `d..` can still add to path
    /// `p`, ignoring conflicts (a valid over-estimate). Length
    /// `slots.len() + 1`; the last entry is all zeros.
    gain_ub: Vec<Vec<f64>>,
}

impl EnumProblem {
    fn build(
        instance: &Instance,
        db: &ImpDb,
        gains: &RequiredGains,
        map: &VarMap,
        model: &Model,
    ) -> EnumProblem {
        let mut required: Vec<f64> = Vec::new();
        let mut path_scalls: Vec<Vec<CallSiteId>> = Vec::new();
        for path in instance.effective_paths() {
            let req = gains.for_path(path.id).get();
            if req == 0 {
                continue;
            }
            required.push(req as f64);
            path_scalls.push(path.scalls.clone());
        }

        let minimize = model.sense() == Sense::Minimize;
        let mut slots: Vec<Slot> = Vec::new();
        let mut index_of: Vec<Option<(usize, usize)>> = vec![None; db.len()];
        for sc in &instance.scalls {
            let mut choices: Vec<Choice> = Vec::new();
            for imp in db.for_scall(sc.id) {
                let Some(Some(var)) = map.x.get(imp.id.index()) else {
                    continue;
                };
                index_of[imp.id.index()] = Some((slots.len(), choices.len()));
                choices.push(Choice {
                    imp: imp.id,
                    // Bounds are meaningful for minimisation models only;
                    // a maximisation model degrades to plain enumeration.
                    cost: if minimize {
                        model.objective().coeff(*var)
                    } else {
                        0.0
                    },
                    gain: imp.gain.get() as f64,
                    conflicts: Vec::new(),
                });
            }
            if !choices.is_empty() {
                let paths = (0..path_scalls.len())
                    .filter(|&p| path_scalls[p].contains(&sc.id))
                    .collect();
                slots.push(Slot { paths, choices });
            }
        }

        // Conflict pairs, both directions, restricted to live columns. A
        // pair only survives when the model actually carries the matching
        // `x_a + x_b ≤ 1` row (Problem 1 excludes the consuming IMPs, so
        // their columns — and with them every pair — vanish).
        for pair in sc_pc_conflicts(db) {
            if let (Some(a), Some(b)) = (index_of[pair.a.index()], index_of[pair.b.index()]) {
                slots[a.0].choices[a.1].conflicts.push(b);
                slots[b.0].choices[b.1].conflicts.push(a);
            }
        }

        // Suffix gain upper bounds for the reachability prune.
        let np = required.len();
        let mut gain_ub = vec![vec![0.0; np]; slots.len() + 1];
        for d in (0..slots.len()).rev() {
            let slot = &slots[d];
            let best: f64 = slot.choices.iter().map(|c| c.gain).fold(0.0, f64::max);
            let (head, tail) = gain_ub.split_at_mut(d + 1);
            for (p, ub) in head[d].iter_mut().enumerate() {
                *ub = tail[0][p] + if slot.paths.contains(&p) { best } else { 0.0 };
            }
        }

        EnumProblem {
            slots,
            lambda: vec![0.0; required.len()],
            required,
            gain_ub,
        }
    }

    /// Deterministic root subgradient ascent: tightens `λ` towards the best
    /// dual bound using Polyak steps against `ub` (any finite value works —
    /// it only scales the steps, never the bound's validity).
    fn train_multipliers(&mut self, ub: f64) {
        let np = self.required.len();
        if np == 0 || self.slots.is_empty() {
            return;
        }
        let mut lambda = vec![0.0; np];
        let mut best_value = f64::NEG_INFINITY;
        let mut best_lambda = lambda.clone();
        let mut theta: f64 = 2.0;
        let mut stalled = 0usize;
        for _ in 0..SUBGRADIENT_ITERS {
            // Evaluate L(λ): independent per-slot minimisation of the
            // reduced cost, with "software" (0 cost, 0 gain) always on
            // offer.
            let mut value: f64 = lambda
                .iter()
                .zip(&self.required)
                .map(|(l, r)| l * r)
                .sum::<f64>();
            let mut relaxed_gain = vec![0.0; np];
            for slot in &self.slots {
                let price: f64 = slot.paths.iter().map(|&p| lambda[p]).sum();
                let mut best = 0.0;
                let mut best_choice: Option<&Choice> = None;
                for choice in &slot.choices {
                    let reduced = choice.cost - price * choice.gain;
                    if reduced < best - 1e-12 {
                        best = reduced;
                        best_choice = Some(choice);
                    }
                }
                value += best;
                if let Some(choice) = best_choice {
                    for &p in &slot.paths {
                        relaxed_gain[p] += choice.gain;
                    }
                }
            }
            if value > best_value + 1e-12 {
                best_value = value;
                best_lambda.copy_from_slice(&lambda);
                stalled = 0;
            } else {
                stalled += 1;
                if stalled >= 5 {
                    theta *= 0.5;
                    stalled = 0;
                }
            }
            // Subgradient of L at λ is the requirement slack.
            let grad: Vec<f64> = self
                .required
                .iter()
                .zip(&relaxed_gain)
                .map(|(r, g)| r - g)
                .collect();
            let norm2: f64 = grad.iter().map(|g| g * g).sum();
            if norm2 <= 1e-18 {
                break;
            }
            let step = theta * (ub - value).max(1.0) / norm2;
            for (l, g) in lambda.iter_mut().zip(&grad) {
                *l = (*l + step * g).max(0.0);
            }
        }
        self.lambda = best_lambda;
    }
}

/// The DFS over a built [`EnumProblem`].
struct EnumSearch<'a> {
    prob: &'a EnumProblem,
    kind: BoundKind,
    model: &'a Model,
    map: &'a VarMap,
    db: &'a ImpDb,
    minimize: bool,
    // Search state.
    forbid: Vec<Vec<u32>>,
    chosen: Vec<ImpId>,
    committed_cost: f64,
    committed_gain: Vec<f64>,
    committed_penalty: f64,
    incumbent: Option<(f64, Vec<f64>)>,
    // Budget.
    max_nodes: usize,
    started: Instant,
    deadline: Option<Duration>,
    cancel: Option<&'a AtomicBool>,
    ext_bound: Option<&'a SharedBound>,
    termination: Termination,
    // Effort counters.
    nodes: usize,
    pruned: usize,
    updates: usize,
}

impl<'a> EnumSearch<'a> {
    /// The score to prune against: own incumbent or any better feasible
    /// score another racer has published.
    fn current_score(&self) -> f64 {
        let own = self.incumbent.as_ref().map_or(f64::INFINITY, |(s, _)| *s);
        match self.ext_bound {
            Some(b) => own.min(b.score()),
            None => own,
        }
    }

    /// Valid lower bound on every feasible completion below this node.
    fn bound(&self, depth: usize) -> f64 {
        if !self.minimize {
            return f64::NEG_INFINITY;
        }
        let mut bound = self.committed_cost + self.committed_penalty;
        for (s, slot) in self.prob.slots.iter().enumerate().skip(depth) {
            let price: f64 = slot.paths.iter().map(|&p| self.prob.lambda[p]).sum();
            let mut best = 0.0;
            for (c, choice) in slot.choices.iter().enumerate() {
                if self.kind == BoundKind::Conflict && self.forbid[s][c] > 0 {
                    continue;
                }
                let reduced = choice.cost - price * choice.gain;
                if reduced < best {
                    best = reduced;
                }
            }
            bound += best;
        }
        bound
    }

    /// `true` when some path can no longer reach its requirement even if
    /// every remaining slot picks its highest-gain IMP.
    fn gain_unreachable(&self, depth: usize) -> bool {
        let ub = &self.prob.gain_ub[depth];
        self.prob
            .required
            .iter()
            .zip(&self.committed_gain)
            .zip(ub)
            .any(|((req, got), extra)| got + extra < req - GAIN_EPS)
    }

    fn leaf(&mut self) {
        let values = encode_selection(self.model, self.map, self.db, &self.chosen);
        if !self.model.is_feasible(&values, FEAS_TOL) {
            return;
        }
        let objective = self.model.objective().eval(&values);
        let score = if self.minimize { objective } else { -objective };
        let improves = match &self.incumbent {
            None => true,
            Some((best, vals)) => {
                score < best - TIE_TOL || (score <= best + TIE_TOL && lex_less(&values, vals))
            }
        };
        if improves {
            let merged = self
                .incumbent
                .as_ref()
                .map_or(score, |(best, _)| best.min(score));
            self.incumbent = Some((merged, values));
            self.updates += 1;
            if let Some(bound) = self.ext_bound {
                bound.publish(score);
            }
        }
    }

    /// Expands one node; returns `true` when the search must stop.
    fn dfs(&mut self, depth: usize) -> bool {
        if self.nodes >= self.max_nodes {
            self.termination = Termination::NodeLimit;
            return true;
        }
        if self.deadline.is_some_and(|d| self.started.elapsed() >= d) {
            self.termination = Termination::Deadline;
            return true;
        }
        if self.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            self.termination = Termination::Cancelled;
            return true;
        }
        self.nodes += 1;

        if self.gain_unreachable(depth) {
            self.pruned += 1;
            return false;
        }
        // Ties survive the prune so the lexicographic rule decides them.
        if self.bound(depth) > self.current_score() + TIE_TOL {
            self.pruned += 1;
            return false;
        }
        if depth == self.prob.slots.len() {
            self.leaf();
            return false;
        }

        // Software first (no commitment) …
        if self.dfs(depth + 1) {
            return true;
        }
        // … then each IMP choice in database order.
        let num_choices = self.prob.slots[depth].choices.len();
        for c in 0..num_choices {
            if self.kind == BoundKind::Conflict && self.forbid[depth][c] > 0 {
                continue;
            }
            let choice = &self.prob.slots[depth].choices[c];
            let (imp, cost, gain) = (choice.imp, choice.cost, choice.gain);
            let conflicts = choice.conflicts.clone();
            self.chosen.push(imp);
            self.committed_cost += cost;
            for &p in &self.prob.slots[depth].paths {
                self.committed_gain[p] += gain;
                self.committed_penalty -= self.prob.lambda[p] * gain;
            }
            for &(s, cc) in &conflicts {
                self.forbid[s][cc] += 1;
            }
            let stop = self.dfs(depth + 1);
            for &(s, cc) in &conflicts {
                self.forbid[s][cc] -= 1;
            }
            for &p in &self.prob.slots[depth].paths {
                self.committed_gain[p] -= gain;
                self.committed_penalty += self.prob.lambda[p] * gain;
            }
            self.committed_cost -= cost;
            self.chosen.pop();
            if stop {
                return true;
            }
        }
        false
    }
}

/// Everything both enumeration backends share: the formulation handles and
/// the racing hooks.
#[derive(Debug, Clone)]
struct EnumContext<'a> {
    instance: &'a Instance,
    db: &'a ImpDb,
    gains: &'a RequiredGains,
    map: &'a VarMap,
    seeds: Vec<Vec<f64>>,
    cancel: Option<Arc<AtomicBool>>,
    shared_bound: Option<Arc<SharedBound>>,
}

impl<'a> EnumContext<'a> {
    fn solve(
        &self,
        model: &Model,
        budget: &SolveBudget,
        kind: BoundKind,
    ) -> Result<EngineSolution, CoreError> {
        let minimize = model.sense() == Sense::Minimize;
        let mut prob = EnumProblem::build(self.instance, self.db, self.gains, self.map, model);

        // Feasible seeds become the starting incumbent through the same
        // improves-rule as every leaf, so seeding never changes the answer.
        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        for seed in &self.seeds {
            if seed.len() != model.num_vars() || !model.is_feasible(seed, FEAS_TOL) {
                continue;
            }
            let objective = model.objective().eval(seed);
            let score = if minimize { objective } else { -objective };
            let improves = match &incumbent {
                None => true,
                Some((best, vals)) => {
                    score < best - TIE_TOL || (score <= best + TIE_TOL && lex_less(seed, vals))
                }
            };
            if improves {
                let merged = incumbent.as_ref().map_or(score, |(b, _)| b.min(score));
                incumbent = Some((merged, seed.clone()));
            }
        }

        if kind == BoundKind::Lagrangian && minimize {
            // Any finite target works for the Polyak steps; prefer a real
            // incumbent score, else a crude worst-case pick.
            let ub = incumbent.as_ref().map_or_else(
                || {
                    1.0 + prob
                        .slots
                        .iter()
                        .map(|s| s.choices.iter().map(|c| c.cost).fold(0.0, f64::max))
                        .sum::<f64>()
                },
                |(score, _)| *score,
            );
            prob.train_multipliers(ub);
        }

        if let (Some(bound), Some((score, _))) = (self.shared_bound.as_deref(), &incumbent) {
            bound.publish(*score);
        }

        let mut search = EnumSearch {
            forbid: prob
                .slots
                .iter()
                .map(|s| vec![0u32; s.choices.len()])
                .collect(),
            committed_gain: vec![0.0; prob.required.len()],
            prob: &prob,
            kind,
            model,
            map: self.map,
            db: self.db,
            minimize,
            chosen: Vec::with_capacity(prob.slots.len()),
            committed_cost: 0.0,
            committed_penalty: prob
                .lambda
                .iter()
                .zip(&prob.required)
                .map(|(l, r)| l * r)
                .sum(),
            incumbent,
            max_nodes: budget.max_nodes,
            started: Instant::now(),
            deadline: budget.deadline,
            cancel: self.cancel.as_deref(),
            ext_bound: self.shared_bound.as_deref(),
            termination: Termination::Optimal,
            nodes: 0,
            pruned: 0,
            updates: 0,
        };
        search.dfs(0);

        let status = status_from_termination(search.termination);
        let effort = BranchBoundStats {
            nodes_explored: search.nodes,
            nodes_pruned: search.pruned,
            incumbent_updates: search.updates,
            threads: 1,
            per_worker: vec![WorkerStats {
                nodes_explored: search.nodes,
                nodes_pruned: search.pruned,
                ..WorkerStats::default()
            }],
            ..BranchBoundStats::default()
        };
        match (search.incumbent, search.termination) {
            (Some((_, values)), _) => Ok(EngineSolution {
                objective: model.objective().eval(&values),
                values,
                status,
                effort,
                root_basis: None,
            }),
            (None, Termination::Optimal) => Err(CoreError::Infeasible { path: None }),
            (None, _) => Err(CoreError::BudgetExhausted),
        }
    }
}

/// Exact implicit enumeration with a Lagrangian-relaxation bound (see the
/// module docs). Constructed internally by [`crate::Solver`]; select it with
/// [`crate::Backend::Lagrangian`].
///
/// # Invariants
///
/// * Returns the byte-identical (lexicographically smallest) optimal
///   selection as every other exact backend — the `docs/BACKENDS.md`
///   determinism contract.
/// * Never claims [`crate::engine::OptimalityStatus::Optimal`] after a
///   budget stop: only a completed enumeration may prove optimality or
///   infeasibility.
///
/// # Example
///
/// ```
/// use partita_core::{Backend, ImpDb, Instance, RequiredGains, SCall, SolveOptions, Solver};
/// use partita_ip::{IpBlock, IpFunction};
/// use partita_interface::TransferJob;
/// use partita_mop::{AreaTenths, Cycles};
///
/// # fn main() -> Result<(), partita_core::CoreError> {
/// let mut instance = Instance::new("demo");
/// instance.library.add(
///     IpBlock::builder("fir").function(IpFunction::Fir)
///         .rates(4, 4).latency(8)
///         .area(AreaTenths::from_units(3)).build(),
/// );
/// let sc = instance.add_scall(
///     SCall::new("fir", IpFunction::Fir, Cycles(4000), TransferJob::new(160, 160)),
/// );
/// instance.add_path(vec![sc]);
/// let sel = Solver::new(&instance)
///     .with_imps(ImpDb::generate(&instance))
///     .solve(
///         &SolveOptions::problem2(RequiredGains::uniform(Cycles(1000)))
///             .backend(Backend::Lagrangian),
///     )?;
/// assert!(sel.status.is_optimal());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LagrangianBackend<'a> {
    ctx: EnumContext<'a>,
}

impl<'a> LagrangianBackend<'a> {
    pub(crate) fn new(
        instance: &'a Instance,
        db: &'a ImpDb,
        gains: &'a RequiredGains,
        map: &'a VarMap,
    ) -> LagrangianBackend<'a> {
        LagrangianBackend {
            ctx: EnumContext {
                instance,
                db,
                gains,
                map,
                seeds: Vec::new(),
                cancel: None,
                shared_bound: None,
            },
        }
    }

    pub(crate) fn with_seeds(mut self, seeds: Vec<Vec<f64>>) -> Self {
        self.ctx.seeds = seeds;
        self
    }

    pub(crate) fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.ctx.cancel = Some(cancel);
        self
    }

    pub(crate) fn with_shared_bound(mut self, bound: Arc<SharedBound>) -> Self {
        self.ctx.shared_bound = Some(bound);
        self
    }
}

impl SolverBackend for LagrangianBackend<'_> {
    fn solve(&self, model: &Model, budget: &SolveBudget) -> Result<EngineSolution, CoreError> {
        self.ctx.solve(model, budget, BoundKind::Lagrangian)
    }
}

/// Exact implicit enumeration over the SC/SC-PC conflict graph (see the
/// module docs). Constructed internally by [`crate::Solver`]; select it with
/// [`crate::Backend::ConflictEnum`].
///
/// # Invariants
///
/// * Committing a choice forbids every conflicting choice for the length
///   of that subtree, so conflict-excluded branches are never expanded —
///   pruning is structural, not an LP by-product.
/// * Shares the tie-keeping incumbent rule with branch-and-bound, so a
///   completed run returns the byte-identical selection (the
///   `docs/BACKENDS.md` determinism contract).
///
/// # Example
///
/// ```
/// use partita_core::{Backend, ImpDb, Instance, RequiredGains, SCall, SolveOptions, Solver};
/// use partita_ip::{IpBlock, IpFunction};
/// use partita_interface::TransferJob;
/// use partita_mop::{AreaTenths, Cycles};
///
/// # fn main() -> Result<(), partita_core::CoreError> {
/// let mut instance = Instance::new("demo");
/// instance.library.add(
///     IpBlock::builder("fir").function(IpFunction::Fir)
///         .rates(4, 4).latency(8)
///         .area(AreaTenths::from_units(3)).build(),
/// );
/// let sc = instance.add_scall(
///     SCall::new("fir", IpFunction::Fir, Cycles(4000), TransferJob::new(160, 160)),
/// );
/// instance.add_path(vec![sc]);
/// let sel = Solver::new(&instance)
///     .with_imps(ImpDb::generate(&instance))
///     .solve(
///         &SolveOptions::problem2(RequiredGains::uniform(Cycles(1000)))
///             .backend(Backend::ConflictEnum),
///     )?;
/// assert!(sel.status.is_optimal());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConflictEnumBackend<'a> {
    ctx: EnumContext<'a>,
}

impl<'a> ConflictEnumBackend<'a> {
    pub(crate) fn new(
        instance: &'a Instance,
        db: &'a ImpDb,
        gains: &'a RequiredGains,
        map: &'a VarMap,
    ) -> ConflictEnumBackend<'a> {
        ConflictEnumBackend {
            ctx: EnumContext {
                instance,
                db,
                gains,
                map,
                seeds: Vec::new(),
                cancel: None,
                shared_bound: None,
            },
        }
    }

    pub(crate) fn with_seeds(mut self, seeds: Vec<Vec<f64>>) -> Self {
        self.ctx.seeds = seeds;
        self
    }

    pub(crate) fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.ctx.cancel = Some(cancel);
        self
    }

    pub(crate) fn with_shared_bound(mut self, bound: Arc<SharedBound>) -> Self {
        self.ctx.shared_bound = Some(bound);
        self
    }
}

impl SolverBackend for ConflictEnumBackend<'_> {
    fn solve(&self, model: &Model, budget: &SolveBudget) -> Result<EngineSolution, CoreError> {
        self.ctx.solve(model, budget, BoundKind::Conflict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulate::build_model;
    use crate::solver::ProblemKind;
    use crate::{Imp, ParallelChoice, SCall};
    use partita_ilp::BranchBound;
    use partita_interface::{InterfaceKind, TransferJob};
    use partita_ip::{IpBlock, IpFunction};
    use partita_mop::{AreaTenths, Cycles};

    /// Three fir() calls sharing one IP, one IMP with a software parallel
    /// code — the same shape as the solver's `three_firs` fixture.
    fn fixture() -> (Instance, ImpDb) {
        let mut inst = Instance::new("enum-fixture");
        let ip = inst.library.add(
            IpBlock::builder("fir")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(3))
                .build(),
        );
        let mk_sc =
            |name: &str| SCall::new(name, IpFunction::Fir, Cycles(1000), TransferJob::new(8, 8));
        let a = inst.add_scall(mk_sc("fir"));
        let b = inst.add_scall(mk_sc("fir"));
        let c = inst.add_scall(mk_sc("fir"));
        inst.add_path(vec![a, b, c]);
        let mk = |sc, gain, par| {
            Imp::new(
                sc,
                vec![ip],
                InterfaceKind::Type1,
                Cycles(gain),
                AreaTenths::from_tenths(2),
                par,
            )
        };
        let db = ImpDb::from_imps(vec![
            mk(a, 600, ParallelChoice::None),
            mk(b, 600, ParallelChoice::None),
            mk(c, 600, ParallelChoice::None),
            mk(b, 900, ParallelChoice::SwScalls(vec![c])),
        ]);
        (inst, db)
    }

    fn formulated(inst: &Instance, db: &ImpDb, rg: u64) -> (Model, VarMap, RequiredGains) {
        let gains = RequiredGains::uniform(Cycles(rg));
        let (model, map) =
            build_model(inst, db, ProblemKind::Problem2, &gains, None).expect("formulate");
        (model, map, gains)
    }

    #[test]
    fn both_backends_match_branch_bound_byte_for_byte() {
        let (inst, db) = fixture();
        for rg in [0u64, 600, 1200, 1500, 1800] {
            let (model, map, gains) = formulated(&inst, &db, rg);
            let budget = SolveBudget::default().with_threads(1);
            let bb = BranchBound::new().solve(&model);
            let lag = LagrangianBackend::new(&inst, &db, &gains, &map).solve(&model, &budget);
            let con = ConflictEnumBackend::new(&inst, &db, &gains, &map).solve(&model, &budget);
            match bb {
                Ok(bb) => {
                    let lag = lag.unwrap_or_else(|e| panic!("lagrangian at rg {rg}: {e}"));
                    let con = con.unwrap_or_else(|e| panic!("conflict at rg {rg}: {e}"));
                    assert_eq!(bb.values, lag.values, "lagrangian values at rg {rg}");
                    assert_eq!(bb.values, con.values, "conflict values at rg {rg}");
                    assert!((bb.objective - lag.objective).abs() < 1e-6);
                    assert!((bb.objective - con.objective).abs() < 1e-6);
                    assert!(lag.status.is_optimal() && con.status.is_optimal());
                }
                Err(_) => {
                    assert!(matches!(lag, Err(CoreError::Infeasible { .. })), "rg {rg}");
                    assert!(matches!(con, Err(CoreError::Infeasible { .. })), "rg {rg}");
                }
            }
        }
    }

    #[test]
    fn infeasible_requirement_is_proven_infeasible() {
        let (inst, db) = fixture();
        // 2000 needs the conflicting 900 + implemented c: impossible.
        let (model, map, gains) = formulated(&inst, &db, 2000);
        let budget = SolveBudget::default().with_threads(1);
        for result in [
            LagrangianBackend::new(&inst, &db, &gains, &map).solve(&model, &budget),
            ConflictEnumBackend::new(&inst, &db, &gains, &map).solve(&model, &budget),
        ] {
            assert!(matches!(result, Err(CoreError::Infeasible { .. })));
        }
    }

    #[test]
    fn starved_budget_is_never_a_silent_optimal() {
        let (inst, db) = fixture();
        let (model, map, gains) = formulated(&inst, &db, 1500);
        let starved = SolveBudget::default().with_max_nodes(1).with_threads(1);
        for result in [
            LagrangianBackend::new(&inst, &db, &gains, &map).solve(&model, &starved),
            ConflictEnumBackend::new(&inst, &db, &gains, &map).solve(&model, &starved),
        ] {
            match result {
                Ok(sol) => assert!(!sol.status.is_optimal()),
                Err(e) => assert_eq!(e, CoreError::BudgetExhausted),
            }
        }
    }

    #[test]
    fn feasible_seed_survives_budget_exhaustion() {
        let (inst, db) = fixture();
        let (model, map, gains) = formulated(&inst, &db, 1500);
        // Seed the known optimum, then starve the search: the seed must
        // come back as the (non-optimal-status) incumbent.
        let full = ConflictEnumBackend::new(&inst, &db, &gains, &map)
            .solve(&model, &SolveBudget::default().with_threads(1))
            .expect("feasible");
        let starved = SolveBudget::default().with_max_nodes(1).with_threads(1);
        let seeded = ConflictEnumBackend::new(&inst, &db, &gains, &map)
            .with_seeds(vec![full.values.clone()])
            .solve(&model, &starved)
            .expect("seed survives");
        assert_eq!(seeded.values, full.values);
        assert_eq!(
            seeded.status,
            crate::OptimalityStatus::FeasibleBudgetExhausted
        );
    }

    #[test]
    fn pre_set_cancel_stops_immediately() {
        let (inst, db) = fixture();
        let (model, map, gains) = formulated(&inst, &db, 1500);
        let cancel = Arc::new(AtomicBool::new(true));
        let budget = SolveBudget::default().with_threads(1);
        let result = LagrangianBackend::new(&inst, &db, &gains, &map)
            .with_cancel(cancel)
            .solve(&model, &budget);
        assert_eq!(result.unwrap_err(), CoreError::BudgetExhausted);
    }

    #[test]
    fn external_bound_tightens_without_changing_the_answer() {
        let (inst, db) = fixture();
        let (model, map, gains) = formulated(&inst, &db, 1500);
        let budget = SolveBudget::default().with_threads(1);
        let cold = ConflictEnumBackend::new(&inst, &db, &gains, &map)
            .solve(&model, &budget)
            .expect("feasible");
        let shared = Arc::new(SharedBound::new());
        shared.publish(cold.objective);
        let primed = ConflictEnumBackend::new(&inst, &db, &gains, &map)
            .with_shared_bound(shared)
            .solve(&model, &budget)
            .expect("feasible");
        assert_eq!(cold.values, primed.values);
        assert!(primed.effort.nodes_explored <= cold.effort.nodes_explored);
    }
}
