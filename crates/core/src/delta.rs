//! Incremental re-solve: patch the built ILP in place and repair the
//! retained simplex basis instead of re-running build + formulate + cold
//! branch-and-bound.
//!
//! The paper's exploration loop (§5) is interactive: the designer nudges
//! one knob — the required gain, the IP library, the admissible interface
//! types — and re-solves. Structurally the patched problem is almost the
//! old one, and [`DeltaSession`] exploits that at three layers:
//!
//! 1. **Model patching.** The session formulates once through the
//!    formulation layer's delta mode: every path's gain row is emitted
//!    (indexed) even at requirement zero, and every IMP keeps a column.
//!    A required-gain edit then touches only right-hand sides; retiring or
//!    restoring IMPs touches only variable bounds. The constraint matrix
//!    never changes shape.
//! 2. **Basis repair.** A shape-stable patch keeps the previous optimal
//!    basis dual-feasible, so the next root LP re-installs it and runs a
//!    handful of dual-simplex pivots instead of two full primal phases
//!    ([`partita_ilp::solve_with_basis`]). A basis the repair cannot use
//!    falls back to a cold factorization — silently, and never to a bogus
//!    "infeasible".
//! 3. **Incumbent seeding.** The previous optimum rides along as a
//!    warm-start hint, pruning the new branch-and-bound from node one.
//!
//! None of it changes answers: [`DeltaSession::resolve`] returns the same
//! selection as a cold [`crate::Solver`] solve of the patched instance
//! and database (same lexicographically-smallest optimum; audits clean).
//! Structural edits that do grow the matrix — adding an IP — honestly
//! rebuild instead (see [`InstanceDelta::AddIp`]), as does any mask edit
//! under Problem 1, whose same-way tie rows depend on which IMPs are live.
//!
//! ```
//! use partita_core::{delta::{DeltaSession, InstanceDelta}, ImpDb, Instance,
//!     RequiredGains, SCall, SolveOptions, Solver};
//! use partita_ip::{IpBlock, IpFunction};
//! use partita_interface::TransferJob;
//! use partita_mop::{AreaTenths, Cycles};
//!
//! # fn main() -> Result<(), partita_core::CoreError> {
//! let mut instance = Instance::new("demo");
//! instance.library.add(
//!     IpBlock::builder("fir16").function(IpFunction::Fir)
//!         .rates(4, 4).latency(8)
//!         .area(AreaTenths::from_units(3)).build(),
//! );
//! let sc = instance.add_scall(
//!     SCall::new("fir", IpFunction::Fir, Cycles(4000), TransferJob::new(160, 160)),
//! );
//! instance.add_path(vec![sc]);
//! let db = ImpDb::generate(&instance);
//!
//! let base = SolveOptions::default();
//! let mut session = DeltaSession::new(instance, db, base)?;
//! let first = session.resolve()?;
//! session.apply(InstanceDelta::SetRg(RequiredGains::uniform(Cycles(500))))?;
//! let second = session.resolve()?; // RHS patch + basis repair, not a rebuild
//! assert!(second.total_gain() >= Cycles(500));
//! # let _ = first;
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use partita_interface::InterfaceKind;
use partita_ip::{IpBlock, IpId};
use partita_mop::Cycles;

use crate::formulate::{build_model_delta, DeltaFormulation};
use crate::solver::solve_prepared;
use crate::telemetry::{Event, TelemetrySink};
use crate::{CoreError, ImpDb, Instance, RequiredGains, Selection, SolveOptions, SolveTrace};

/// One incremental edit to a solve session's problem.
#[derive(Debug, Clone)]
pub enum InstanceDelta {
    /// Change the required gains. A pure right-hand-side patch of the
    /// always-emitted gain rows — the cheapest delta, and the one a
    /// descending-RG sweep applies point after point.
    SetRg(RequiredGains),
    /// Remove an IP block from consideration: every IMP using it is
    /// retired (columns pinned to zero). The block itself stays in the
    /// library, so ids, areas and provenance lookups are untouched — it
    /// simply can no longer be selected.
    RemoveIp(IpId),
    /// Add an IP block to the library and generate its IMPs. The matrix
    /// grows columns, so this is the one delta that forces a cold rebuild
    /// of the formulation on the next [`DeltaSession::resolve`].
    AddIp(IpBlock),
    /// Allow (`true`) or ban (`false`) an interface kind: every IMP built
    /// on that kind is restored or retired via bound patches.
    SetInterfaceKind(InterfaceKind, bool),
}

impl InstanceDelta {
    /// The telemetry label of this delta's operation.
    fn op(&self) -> &'static str {
        match self {
            InstanceDelta::SetRg(_) => "set_rg",
            InstanceDelta::RemoveIp(_) => "remove_ip",
            InstanceDelta::AddIp(_) => "add_ip",
            InstanceDelta::SetInterfaceKind(..) => "set_interface_kind",
        }
    }
}

/// A stateful incremental solve session. See the module docs.
pub struct DeltaSession {
    instance: Arc<Instance>,
    db: Arc<ImpDb>,
    options: SolveOptions,
    form: DeltaFormulation,
    /// Retained root-LP basis of the previous resolve.
    basis: Option<Arc<partita_ilp::Basis>>,
    /// Previous optimum, seeded into the next resolve as a warm-start hint.
    prev: Option<Selection>,
    /// Set by structural deltas; the next resolve reformulates from
    /// scratch and drops the retained basis.
    needs_rebuild: bool,
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl std::fmt::Debug for DeltaSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaSession")
            .field("instance", &self.instance.name)
            .field("imps", &self.db.len())
            .field("active_imps", &self.db.active_len())
            .field("basis", &self.basis.as_ref().map(|b| b.num_rows()))
            .field("needs_rebuild", &self.needs_rebuild)
            .finish()
    }
}

impl DeltaSession {
    /// Formulates the patchable model for `(instance, db, options)`.
    ///
    /// Both the instance and the database are taken by `Arc` (plain values
    /// convert) — the session shares rather than copies them, and only
    /// structural deltas ever clone-on-write.
    ///
    /// # Errors
    ///
    /// Formulation errors, exactly as [`crate::Solver::solve`] would report
    /// them ([`CoreError::NoImps`], [`CoreError::BadPath`], …).
    pub fn new(
        instance: impl Into<Arc<Instance>>,
        db: impl Into<Arc<ImpDb>>,
        options: SolveOptions,
    ) -> Result<DeltaSession, CoreError> {
        let instance = instance.into();
        let db = db.into();
        let form = build_model_delta(
            &instance,
            &db,
            options.problem,
            &options.gains,
            options.power_budget_mw,
        )?;
        Ok(DeltaSession {
            instance,
            db,
            options,
            form,
            basis: None,
            prev: None,
            needs_rebuild: false,
            sink: None,
        })
    }

    /// Routes this session's telemetry ([`Event::ModelPatched`],
    /// [`Event::BasisReused`], and the inner solves) to `sink` instead of
    /// the process-wide [`crate::telemetry::global`] sink.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> DeltaSession {
        self.sink = Some(sink);
        self
    }

    /// The current (patched) instance.
    #[must_use]
    pub fn instance(&self) -> &Arc<Instance> {
        &self.instance
    }

    /// The current (patched) IMP database.
    #[must_use]
    pub fn db(&self) -> &Arc<ImpDb> {
        &self.db
    }

    /// The current solve options (gains reflect applied [`InstanceDelta::SetRg`]s).
    #[must_use]
    pub fn options(&self) -> &SolveOptions {
        &self.options
    }

    /// `true` when the next [`DeltaSession::resolve`] must reformulate
    /// instead of patching (after [`InstanceDelta::AddIp`], or any mask
    /// edit under Problem 1).
    #[must_use]
    pub fn needs_rebuild(&self) -> bool {
        self.needs_rebuild
    }

    fn sink(&self) -> &dyn TelemetrySink {
        crate::telemetry::resolve(self.sink.as_ref())
    }

    fn emit_patch(&self, op: &str, mode: &str, rows_touched: usize, cols_retired: usize) {
        let sink = self.sink();
        if sink.enabled() {
            sink.emit(&Event::ModelPatched {
                instance: self.instance.name.clone(),
                op: op.to_string(),
                mode: mode.to_string(),
                rows_touched,
                cols_retired,
            });
        }
    }

    /// Applies one edit to the session's problem, patching the built model
    /// in place where the matrix shape allows it.
    ///
    /// # Errors
    ///
    /// Internal patch errors ([`CoreError::Ilp`]) — e.g. a gain-row index
    /// drifting out of range, which would indicate a bug, not bad input.
    /// Unknown ids in [`InstanceDelta::RemoveIp`] /
    /// [`InstanceDelta::SetInterfaceKind`] are no-ops, matching how a
    /// cold solve treats an IP nothing references.
    pub fn apply(&mut self, delta: InstanceDelta) -> Result<(), CoreError> {
        let op = delta.op();
        match delta {
            InstanceDelta::SetRg(gains) => {
                self.options.gains = gains;
                let mut rows = 0usize;
                if !self.needs_rebuild {
                    for &(path, row) in &self.form.gain_rows {
                        let rhs = self.options.gains.for_path(path).get() as f64;
                        self.form
                            .model
                            .set_constraint_rhs(row, rhs)
                            .map_err(CoreError::Ilp)?;
                        rows += 1;
                    }
                }
                let mode = if self.needs_rebuild {
                    "rebuild"
                } else {
                    "patch"
                };
                self.emit_patch(op, mode, rows, 0);
            }
            InstanceDelta::RemoveIp(ip) => {
                let ids: Vec<crate::ImpId> = self
                    .db
                    .imps()
                    .iter()
                    .filter(|imp| imp.ips.contains(&ip) && self.db.is_active(imp.id))
                    .map(|imp| imp.id)
                    .collect();
                self.retire_cols(op, &ids, true)?;
            }
            InstanceDelta::AddIp(block) => {
                let inst = Arc::make_mut(&mut self.instance);
                let id = inst.library.add(block);
                let added = Arc::make_mut(&mut self.db).extend_for_ip(&self.instance, id);
                // New columns change the matrix shape: reformulate on the
                // next resolve, and drop the now-incompatible basis early
                // (compatibility would reject it anyway).
                self.needs_rebuild = true;
                self.basis = None;
                self.emit_patch(op, "rebuild", 0, 0);
                let _ = added;
            }
            InstanceDelta::SetInterfaceKind(kind, enabled) => {
                let ids: Vec<crate::ImpId> = self
                    .db
                    .imps()
                    .iter()
                    .filter(|imp| imp.interface == kind && self.db.is_active(imp.id) != enabled)
                    .map(|imp| imp.id)
                    .collect();
                self.retire_cols(op, &ids, !enabled)?;
            }
        }
        Ok(())
    }

    /// Retires (`retire == true`) or restores the given IMPs: mask the
    /// database and patch the matching column bounds. Under Problem 1 the
    /// mask shapes the same-way tie rows, so the patch is demoted to a
    /// rebuild.
    fn retire_cols(
        &mut self,
        op: &str,
        ids: &[crate::ImpId],
        retire: bool,
    ) -> Result<(), CoreError> {
        let db = Arc::make_mut(&mut self.db);
        for &id in ids {
            if retire {
                db.retire(id);
            } else {
                db.restore(id);
            }
        }
        if self.options.problem == crate::ProblemKind::Problem1 && !ids.is_empty() {
            self.needs_rebuild = true;
        }
        let mut cols = 0usize;
        if !self.needs_rebuild {
            let (lo, hi) = if retire { (0.0, 0.0) } else { (0.0, 1.0) };
            for &id in ids {
                if let Some(v) = self.form.map.x[id.index()] {
                    self.form
                        .model
                        .set_var_bounds(v, lo, hi)
                        .map_err(CoreError::Ilp)?;
                    cols += 1;
                }
            }
        }
        // A retired IMP invalidates a previous optimum that used it; keep
        // the hint only while it remains assembled from live IMPs.
        if retire {
            if let Some(prev) = &self.prev {
                if prev.chosen().iter().any(|imp| ids.contains(&imp.id)) {
                    self.prev = None;
                }
            }
        }
        let mode = if self.needs_rebuild {
            "rebuild"
        } else {
            "patch"
        };
        self.emit_patch(op, mode, 0, cols);
        Ok(())
    }

    /// Solves the current (patched) problem, reusing the retained basis
    /// and the previous optimum where they help. The returned selection is
    /// identical to a cold [`crate::Solver`] solve of
    /// [`DeltaSession::instance`] + [`DeltaSession::db`] with the current
    /// options (and passes the same audit).
    ///
    /// # Errors
    ///
    /// Exactly those of [`crate::Solver::solve`] on the patched problem —
    /// including [`CoreError::Infeasible`] when the edits made it so.
    pub fn resolve(&mut self) -> Result<Selection, CoreError> {
        if self.needs_rebuild {
            self.form = build_model_delta(
                &self.instance,
                &self.db,
                self.options.problem,
                &self.options.gains,
                self.options.power_budget_mw,
            )?;
            self.basis = None;
            self.needs_rebuild = false;
        }
        let mut options = self.options.clone();
        options.root_basis = self.basis.clone();
        if options.hint.is_none() {
            if let Some(prev) = &self.prev {
                // The solver independently checks the seed against the
                // patched model, so a stale hint can only be ignored, never
                // believed; the active-mask filter just avoids pointless
                // seeding.
                if prev.chosen().iter().all(|imp| self.db.is_active(imp.id)) {
                    options.hint = Some(prev.chosen().iter().map(|imp| imp.id).collect());
                }
            }
        }
        let supplied_rows = options.root_basis.as_ref().map(|b| b.num_rows());
        let (sel, basis) = solve_prepared(
            &self.instance,
            &self.db,
            &self.form.model,
            &self.form.map,
            &options,
            SolveTrace::default(),
            self.sink(),
        )?;
        if let Some(rows) = supplied_rows {
            let sink = self.sink();
            if sink.enabled() {
                sink.emit(&Event::BasisReused {
                    accepted: sel.trace.basis_reused,
                    rows,
                });
            }
        }
        if basis.is_some() {
            self.basis = basis;
        }
        self.prev = Some(sel.clone());
        Ok(sel)
    }

    /// Applies a sequence of deltas, then resolves — the common
    /// edit-and-look loop as one call.
    ///
    /// # Errors
    ///
    /// The first [`DeltaSession::apply`] error, else the
    /// [`DeltaSession::resolve`] error.
    pub fn apply_all(
        &mut self,
        deltas: impl IntoIterator<Item = InstanceDelta>,
    ) -> Result<Selection, CoreError> {
        for d in deltas {
            self.apply(d)?;
        }
        self.resolve()
    }
}

/// The uniform required gain a session currently targets, when uniform —
/// a convenience for drivers chaining [`InstanceDelta::SetRg`] sweeps.
impl DeltaSession {
    /// See [`RequiredGains::as_uniform`].
    #[must_use]
    pub fn uniform_rg(&self) -> Option<Cycles> {
        self.options.gains.as_uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::SelectionAuditor;
    use crate::{Imp, ParallelChoice, SCall, Solver};
    use partita_interface::TransferJob;
    use partita_ip::IpFunction;
    use partita_mop::AreaTenths;

    /// Three fir() s-calls, two alternative IPs with distinct areas, one
    /// path — enough structure for every delta kind to bite.
    fn rig(name: &str) -> (Instance, ImpDb) {
        let mut inst = Instance::new(name);
        let cheap = inst.library.add(
            IpBlock::builder("fir_cheap")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(3))
                .build(),
        );
        let fast = inst.library.add(
            IpBlock::builder("fir_fast")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(5))
                .build(),
        );
        let mut scs = Vec::new();
        for _ in 0..3 {
            scs.push(inst.add_scall(SCall::new(
                "fir",
                IpFunction::Fir,
                Cycles(1000),
                TransferJob::new(8, 8),
            )));
        }
        inst.add_path(scs.clone());
        let mut imps = Vec::new();
        for &sc in &scs {
            imps.push(Imp::new(
                sc,
                vec![cheap],
                InterfaceKind::Type1,
                Cycles(600),
                AreaTenths::from_tenths(2),
                ParallelChoice::None,
            ));
            imps.push(Imp::new(
                sc,
                vec![fast],
                InterfaceKind::Type3,
                Cycles(900),
                AreaTenths::from_tenths(4),
                ParallelChoice::None,
            ));
        }
        (inst, ImpDb::from_imps(imps))
    }

    /// Cold reference: a fresh solver over the session's current (patched)
    /// instance and database, no hint, no basis.
    fn cold(session: &DeltaSession) -> Selection {
        Solver::new(session.instance())
            .with_imps(Arc::clone(session.db()))
            .solve(session.options())
            .expect("cold reference solve")
    }

    fn assert_matches_cold(sel: &Selection, session: &DeltaSession) {
        let reference = cold(session);
        assert_eq!(sel.chosen(), reference.chosen());
        assert_eq!(sel.total_area(), reference.total_area());
        assert_eq!(sel.status, reference.status);
        SelectionAuditor::new(session.instance(), session.db())
            .audit(sel, session.options())
            .into_result()
            .expect("delta selection audits clean");
    }

    #[test]
    fn set_rg_is_an_rhs_patch_that_matches_cold() {
        let (inst, db) = rig("rg");
        let mut s = DeltaSession::new(
            inst,
            db,
            SolveOptions::problem2(RequiredGains::uniform(Cycles(600))),
        )
        .unwrap();
        let first = s.resolve().unwrap();
        assert_matches_cold(&first, &s);
        for rg in [1200u64, 1800, 2400, 600] {
            s.apply(InstanceDelta::SetRg(RequiredGains::uniform(Cycles(rg))))
                .unwrap();
            assert!(!s.needs_rebuild(), "SetRg must stay a patch");
            let sel = s.resolve().unwrap();
            assert!(sel.total_gain() >= Cycles(rg));
            assert_matches_cold(&sel, &s);
        }
    }

    #[test]
    fn chained_rg_patches_reuse_the_basis() {
        let (inst, db) = rig("basis");
        let mut s = DeltaSession::new(
            inst,
            db,
            SolveOptions::problem2(RequiredGains::uniform(Cycles(2400))),
        )
        .unwrap();
        s.resolve().unwrap();
        let mut reused = 0;
        for rg in [1800u64, 1200, 600] {
            s.apply(InstanceDelta::SetRg(RequiredGains::uniform(Cycles(rg))))
                .unwrap();
            if s.resolve().unwrap().trace.basis_reused {
                reused += 1;
            }
        }
        assert!(reused >= 1, "no RHS patch repaired the retained basis");
    }

    #[test]
    fn remove_ip_retires_columns_and_matches_cold() {
        let (inst, db) = rig("rm");
        let cheap = inst.library.block_by_name("fir_cheap").unwrap().id();
        let mut s = DeltaSession::new(
            inst,
            db,
            SolveOptions::problem2(RequiredGains::uniform(Cycles(1800))),
        )
        .unwrap();
        // At RG 1800 the area-minimal optimum is all-cheap (3 x 600 exactly).
        let with_cheap = s.resolve().unwrap();
        assert!(with_cheap
            .chosen()
            .iter()
            .any(|imp| imp.ips.contains(&cheap)));
        s.apply(InstanceDelta::RemoveIp(cheap)).unwrap();
        assert!(!s.needs_rebuild(), "RemoveIp must stay a bound patch");
        assert_eq!(s.db().active_len(), 3);
        let without = s.resolve().unwrap();
        assert!(without.chosen().iter().all(|imp| !imp.ips.contains(&cheap)));
        assert_matches_cold(&without, &s);
    }

    #[test]
    fn banned_interface_kind_round_trips() {
        let (inst, db) = rig("kind");
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(1200)));
        let mut s = DeltaSession::new(inst, db, opts).unwrap();
        let open = s.resolve().unwrap();
        s.apply(InstanceDelta::SetInterfaceKind(InterfaceKind::Type3, false))
            .unwrap();
        let banned = s.resolve().unwrap();
        assert!(banned
            .chosen()
            .iter()
            .all(|imp| imp.interface != InterfaceKind::Type3));
        assert_matches_cold(&banned, &s);
        s.apply(InstanceDelta::SetInterfaceKind(InterfaceKind::Type3, true))
            .unwrap();
        let restored = s.resolve().unwrap();
        assert_eq!(restored.chosen(), open.chosen());
        assert_eq!(restored.total_area(), open.total_area());
        assert_matches_cold(&restored, &s);
    }

    #[test]
    fn add_ip_forces_rebuild_and_matches_cold() {
        let (inst, db) = rig("add");
        let mut s = DeltaSession::new(
            inst,
            db,
            SolveOptions::problem2(RequiredGains::uniform(Cycles(1200))),
        )
        .unwrap();
        s.resolve().unwrap();
        let before = s.db().len();
        s.apply(InstanceDelta::AddIp(
            IpBlock::builder("fir_tiny")
                .function(IpFunction::Fir)
                .rates(4, 4)
                .latency(8)
                .area(AreaTenths::from_units(1))
                .build(),
        ))
        .unwrap();
        assert!(s.needs_rebuild(), "AddIp must rebuild");
        assert!(s.db().len() > before, "new IMPs were generated");
        let sel = s.resolve().unwrap();
        assert!(!s.needs_rebuild(), "rebuild consumed");
        assert_matches_cold(&sel, &s);
    }

    #[test]
    fn delta_resolve_explores_no_more_nodes_than_cold() {
        let (inst, db) = rig("nodes");
        let mut opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(2400)));
        opts.budget.threads = 1;
        let mut s = DeltaSession::new(inst.clone(), db.clone(), opts.clone()).unwrap();
        s.resolve().unwrap();
        s.apply(InstanceDelta::SetRg(RequiredGains::uniform(Cycles(1800))))
            .unwrap();
        let warm = s.resolve().unwrap();
        let mut cold_opts = opts;
        cold_opts.gains = RequiredGains::uniform(Cycles(1800));
        let cold = Solver::new(&inst).with_imps(db).solve(&cold_opts).unwrap();
        assert!(
            warm.trace.nodes_explored <= cold.trace.nodes_explored,
            "warm {} > cold {}",
            warm.trace.nodes_explored,
            cold.trace.nodes_explored
        );
    }

    #[test]
    fn infeasible_patch_reports_infeasible_not_garbage() {
        let (inst, db) = rig("inf");
        let mut s = DeltaSession::new(
            inst,
            db,
            SolveOptions::problem2(RequiredGains::uniform(Cycles(600))),
        )
        .unwrap();
        s.resolve().unwrap();
        s.apply(InstanceDelta::SetRg(RequiredGains::uniform(Cycles(
            1_000_000,
        ))))
        .unwrap();
        assert!(matches!(s.resolve(), Err(CoreError::Infeasible { .. })));
        // And the session recovers once the requirement drops back.
        s.apply(InstanceDelta::SetRg(RequiredGains::uniform(Cycles(600))))
            .unwrap();
        let back = s.resolve().unwrap();
        assert_matches_cold(&back, &s);
    }
}
