//! The solver-engine layer: pluggable backends, budgets with graceful
//! fallback, and solve telemetry.
//!
//! [`crate::Solver::solve`] no longer calls branch-and-bound directly; it
//! dispatches through a [`SolverBackend`] chosen by
//! [`crate::SolveOptions::backend`] and bounded by a [`SolveBudget`]. Budget
//! exhaustion is never silent: every [`crate::Selection`] carries an
//! [`OptimalityStatus`] saying whether the result is proven optimal, the
//! best feasible point a exhausted budget allowed, or a heuristic fallback —
//! plus a [`SolveTrace`] recording model dimensions, per-phase wall times and
//! search effort.

use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use partita_ilp::cuts::CutSeparator;
use partita_ilp::{
    run_binary_exhaustive, Basis, BranchBound, BranchBoundStats, Model, SharedBound, Termination,
    WorkerStats,
};

use crate::formulate::VarMap;
use crate::solver::RequiredGains;
use crate::{CoreError, ImpDb, ImpId, Instance};

/// Which solver backend answers a [`crate::Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Best-first branch-and-bound over the LP relaxation (the default):
    /// proves optimality when its budget suffices.
    #[default]
    BranchBound,
    /// Brute-force enumeration of every binary assignment. Exact but only
    /// viable on small models ([`partita_ilp::MAX_EXHAUSTIVE_BINARIES`]).
    Exhaustive,
    /// The gain/area-ratio greedy heuristic. Fast, never proves optimality.
    Greedy,
    /// Implicit enumeration with a Lagrangian-relaxation bound: the per-path
    /// gain rows are dualised into the objective with multipliers tightened
    /// by root subgradient ascent. Exact; strongest when the gain
    /// requirements are the binding structure.
    Lagrangian,
    /// Implicit enumeration over the SC/SC-PC conflict graph with conflict
    /// propagation and gain-reachability pruning. Exact; strongest on
    /// conflict-dense instances.
    ConflictEnum,
    /// Races the exact backends concurrently: the first audit-clean proven
    /// optimum wins and cancels the rest. See `docs/BACKENDS.md`.
    Portfolio,
}

impl Backend {
    /// Every selectable backend, in documentation/wire order.
    ///
    /// `docs/BACKENDS.md` must describe each entry by its [`Backend::name`]
    /// (a test diffs the doc against this list), and the service API accepts
    /// exactly these names.
    pub const ALL: [Backend; 6] = [
        Backend::BranchBound,
        Backend::Exhaustive,
        Backend::Greedy,
        Backend::Lagrangian,
        Backend::ConflictEnum,
        Backend::Portfolio,
    ];

    /// The snake_case name used in telemetry and the service wire format.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::BranchBound => "branch_bound",
            Backend::Exhaustive => "exhaustive",
            Backend::Greedy => "greedy",
            Backend::Lagrangian => "lagrangian",
            Backend::ConflictEnum => "conflict_enum",
            Backend::Portfolio => "portfolio",
        }
    }

    /// `true` for backends that prove optimality when they complete within
    /// budget (everything except [`Backend::Greedy`]).
    #[must_use]
    pub fn is_exact(self) -> bool {
        !matches!(self, Backend::Greedy)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where lifted-cover cuts from the fixed-charge/once-per-IMP structure are
/// separated (see `partita_ilp::cuts`). Cuts tighten LP relaxations without
/// excluding any integer point, so every policy returns the same selection —
/// they only trade separation time against tree size.
///
/// ```
/// use partita_core::{CutPolicy, SolveOptions};
///
/// let opts = SolveOptions::default().cut_policy(CutPolicy::Root);
/// assert_eq!(opts.cut_policy_active(), CutPolicy::Root);
/// assert_eq!(CutPolicy::default(), CutPolicy::Off);
/// assert_eq!(CutPolicy::Node.to_string(), "node");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CutPolicy {
    /// No cut separation (the default; keeps node counts comparable with
    /// historical baselines).
    #[default]
    Off,
    /// Strengthen the model once at the branch-and-bound root.
    Root,
    /// Root strengthening plus per-node separation against each node's LP
    /// relaxation.
    Node,
}

impl CutPolicy {
    /// The snake_case name used in telemetry and wire formats.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CutPolicy::Off => "off",
            CutPolicy::Root => "root",
            CutPolicy::Node => "node",
        }
    }
}

impl fmt::Display for CutPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Limits on the work a solve is allowed to do, and what to do when they run
/// out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveBudget {
    /// Branch-and-bound node cap.
    pub max_nodes: usize,
    /// Optional wall-clock deadline, checked once per node.
    pub deadline: Option<Duration>,
    /// Backend to fall back to when the budget runs out before *any*
    /// feasible point is found. `None` turns budget exhaustion into
    /// [`CoreError::BudgetExhausted`].
    pub fallback: Option<Backend>,
    /// Worker threads for the branch-and-bound backend (minimum 1). The
    /// default is read once from the `PARTITA_THREADS` environment variable,
    /// falling back to 1 (serial) when unset or unparsable.
    pub threads: usize,
}

/// Reads `PARTITA_THREADS` once; the answer is process-wide.
fn default_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("PARTITA_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(1, |t| t.max(1))
    })
}

/// Reads `PARTITA_AUDIT` once; the answer is process-wide. Any value other
/// than empty, `0`, or `false` (case-insensitive) opts every solve into the
/// post-solve [`crate::verify::SelectionAuditor`] pass.
pub(crate) fn default_audit() -> bool {
    static AUDIT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AUDIT.get_or_init(|| {
        std::env::var("PARTITA_AUDIT")
            .map(|v| {
                let v = v.trim();
                !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false"))
            })
            .unwrap_or(false)
    })
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget {
            max_nodes: 200_000,
            deadline: None,
            fallback: Some(Backend::Greedy),
            threads: default_threads(),
        }
    }
}

impl SolveBudget {
    /// Caps the branch-and-bound node count.
    #[must_use]
    pub fn with_max_nodes(mut self, max_nodes: usize) -> SolveBudget {
        self.max_nodes = max_nodes;
        self
    }

    /// Sets a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> SolveBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the fallback backend (`None` disables fallback).
    #[must_use]
    pub fn with_fallback(mut self, fallback: Option<Backend>) -> SolveBudget {
        self.fallback = fallback;
        self
    }

    /// Sets the branch-and-bound worker-thread count (clamped to at least
    /// 1). Results are identical across thread counts for solves that finish
    /// within budget; see the `partita-ilp` branch-and-bound determinism
    /// contract.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> SolveBudget {
        self.threads = threads.max(1);
        self
    }
}

/// How much trust a solution deserves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimalityStatus {
    /// The backend proved this selection optimal.
    #[default]
    Optimal,
    /// The budget ran out, but the search had already found this feasible
    /// (not proven optimal) selection — it is the best incumbent seen.
    FeasibleBudgetExhausted,
    /// The primary backend's budget ran out with no feasible point; this
    /// selection comes from the [`SolveBudget::fallback`] backend.
    FallbackUsed,
    /// The caller explicitly picked a heuristic backend; no optimality claim
    /// was ever on the table.
    Heuristic,
}

impl OptimalityStatus {
    /// `true` when the selection is proven optimal.
    #[must_use]
    pub fn is_optimal(self) -> bool {
        self == OptimalityStatus::Optimal
    }
}

/// The one place an ILP-layer [`Termination`] becomes a solution trust
/// level: only a completed search may claim [`OptimalityStatus::Optimal`];
/// node-limit, deadline and cooperative cancellation all downgrade uniformly
/// to [`OptimalityStatus::FeasibleBudgetExhausted`]. Every backend routes
/// through this helper so no backend can invent its own (dishonest) mapping.
pub(crate) fn status_from_termination(termination: Termination) -> OptimalityStatus {
    match termination {
        Termination::Optimal => OptimalityStatus::Optimal,
        Termination::NodeLimit | Termination::Deadline | Termination::Cancelled => {
            OptimalityStatus::FeasibleBudgetExhausted
        }
    }
}

impl fmt::Display for OptimalityStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptimalityStatus::Optimal => "optimal",
            OptimalityStatus::FeasibleBudgetExhausted => "feasible_budget_exhausted",
            OptimalityStatus::FallbackUsed => "fallback_used",
            OptimalityStatus::Heuristic => "heuristic",
        })
    }
}

/// End-to-end telemetry of one [`crate::Solver::solve`] call.
///
/// Durations are wall-clock. A default-constructed trace (all zeros) marks a
/// [`crate::Selection`] that was not produced by the solver pipeline, e.g.
/// one built by a standalone baseline heuristic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveTrace {
    /// Backend that produced the accepted solution.
    pub backend: Backend,
    /// Trust level of the accepted solution.
    pub status: OptimalityStatus,
    /// Decision variables in the ILP model.
    pub num_vars: usize,
    /// Constraints in the ILP model.
    pub num_constraints: usize,
    /// Implementation methods considered.
    pub num_imps: usize,
    /// Branch-and-bound nodes explored (binary assignments for the
    /// exhaustive backend, 0 for greedy).
    pub nodes_explored: usize,
    /// Branch-and-bound nodes pruned by bound.
    pub nodes_pruned: usize,
    /// Times the incumbent improved during the search.
    pub incumbent_updates: usize,
    /// Simplex pivots summed over every node LP.
    pub simplex_iterations: usize,
    /// Phase-1 (feasibility) simplex pivots across every LP of the solve.
    pub phase1_pivots: usize,
    /// Phase-2 (optimality) simplex pivots across every LP of the solve.
    pub phase2_pivots: usize,
    /// Dual-simplex repair pivots (warm-basis installs included).
    pub dual_pivots: usize,
    /// Pivots spent lex-canonicalising optimal root vertices.
    pub lex_pivots: usize,
    /// Simplex tableaus built (one per LP solved at tableau level).
    pub tableau_builds: usize,
    /// Tableau builds that reused an already-large-enough scratch buffer
    /// instead of allocating.
    pub scratch_reuses: usize,
    /// Times the simplex entering rule fell back from Dantzig to Bland
    /// inside a degenerate stall.
    pub bland_activations: usize,
    /// Whether a greedy warm start seeded the branch-and-bound incumbent.
    pub warm_start_accepted: bool,
    /// Binaries permanently fixed by warm-start root probing.
    pub vars_fixed: usize,
    /// Whether a retained root-LP basis from a previous solve was installed
    /// and dual-repaired instead of running two-phase simplex from scratch.
    pub basis_reused: bool,
    /// Worker threads the branch-and-bound search ran with (1 for serial
    /// and for the non-branch-and-bound backends).
    pub threads: usize,
    /// Nodes explored per worker (one entry per worker; empty for backends
    /// without a worker pool).
    pub worker_nodes: Vec<usize>,
    /// Nodes each worker took from the shared pool instead of its local
    /// dive stack (parallel to [`SolveTrace::worker_nodes`]; all zero for
    /// the serial search, which has no pool).
    pub worker_steals: Vec<usize>,
    /// Time spent generating the IMP database (zero when prebuilt).
    pub imp_generation: Duration,
    /// Time spent building the ILP model.
    pub formulation: Duration,
    /// Time spent in the backend (including any fallback).
    pub solve: Duration,
    /// Time spent decoding the solution into a selection.
    pub decode: Duration,
}

impl SolveTrace {
    /// Total wall time across all recorded phases.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.imp_generation + self.formulation + self.solve + self.decode
    }

    /// Renders the trace as a single JSON object through the telemetry
    /// layer: a schema-tagged [`crate::telemetry::Event::SolveFinished`]
    /// event (all durations are integer microseconds). The legacy field
    /// order of PRs 1–3 is preserved; the `schema`/`event` tags are
    /// prepended and `worker_steals` rides after `worker_nodes`.
    #[deprecated(
        since = "0.8.0",
        note = "construct the telemetry event directly: \
                `telemetry::Event::SolveFinished { trace }.to_json()` \
                (same bytes; composes with sinks and redaction)"
    )]
    #[must_use]
    pub fn to_json(&self) -> String {
        crate::telemetry::Event::SolveFinished {
            trace: self.clone(),
        }
        .to_json()
    }
}

/// A backend's answer, in model space: variable values plus the effort it
/// took to find them. [`crate::Solver::solve`] decodes this into a
/// [`crate::Selection`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSolution {
    /// Objective value under the model's own objective.
    pub objective: f64,
    /// Value per model variable.
    pub values: Vec<f64>,
    /// Trust level of this solution.
    pub status: OptimalityStatus,
    /// Search-effort counters (zeroed where a backend has no such notion).
    pub effort: BranchBoundStats,
    /// Root-LP basis retained by the branch-and-bound backend, reusable to
    /// warm-start the next same-shaped solve (`None` for other backends).
    pub root_basis: Option<Arc<Basis>>,
}

/// A pluggable solve strategy over a formulated ILP [`Model`].
///
/// Implementations must return a solution whose `values` satisfy the model's
/// constraints, or an error; budget exhaustion without any feasible point is
/// [`CoreError::BudgetExhausted`] so the dispatcher can try the fallback.
pub trait SolverBackend {
    /// Solves `model` within `budget`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Infeasible`] when the backend proves (or, for
    /// heuristics, concludes) no feasible point exists,
    /// [`CoreError::BudgetExhausted`] when the budget ran out first, plus
    /// ILP-layer errors.
    fn solve(&self, model: &Model, budget: &SolveBudget) -> Result<EngineSolution, CoreError>;
}

/// Branch-and-bound backend, optionally warm-started with known feasible
/// points (see [`crate::SolveOptions::warm_start`] and
/// [`crate::SolveOptions::warm_start_hint`]).
#[derive(Debug, Clone, Default)]
pub struct BranchBoundBackend {
    /// Candidate assignments seeding the incumbent (the best feasible one
    /// wins); infeasible or malformed seeds are ignored.
    pub seeds: Vec<Vec<f64>>,
    /// Retained root-LP basis from a previous same-shaped solve; installed
    /// and dual-repaired at the root, silently falling back to the cold
    /// two-phase path when stale or incompatible.
    pub root_basis: Option<Arc<Basis>>,
    /// Cooperative cancellation flag, polled once per node. Set by the
    /// portfolio racer when another backend has already won; a cancelled
    /// search reports [`OptimalityStatus::FeasibleBudgetExhausted`] (or
    /// [`CoreError::BudgetExhausted`] with no incumbent), never `Optimal`.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Cross-backend incumbent bound shared while racing: feasible scores
    /// published by other racers tighten this search's pruning without ever
    /// changing which optimum it reports.
    pub shared_bound: Option<Arc<SharedBound>>,
    /// Lifted-cover cut separator applied per node
    /// ([`partita_ilp::cuts`]); `None` disables node cuts.
    pub node_cuts: Option<Arc<CutSeparator>>,
}

impl SolverBackend for BranchBoundBackend {
    fn solve(&self, model: &Model, budget: &SolveBudget) -> Result<EngineSolution, CoreError> {
        let mut bb = BranchBound::new()
            .with_max_nodes(budget.max_nodes)
            .with_threads(budget.threads);
        if let Some(d) = budget.deadline {
            bb = bb.with_deadline(d);
        }
        if let Some(basis) = &self.root_basis {
            bb = bb.with_root_basis(basis.clone());
        }
        if let Some(cancel) = &self.cancel {
            bb = bb.with_cancel(cancel.clone());
        }
        if let Some(bound) = &self.shared_bound {
            bb = bb.with_shared_bound(bound.clone());
        }
        if let Some(cuts) = &self.node_cuts {
            bb = bb.with_node_cuts(cuts.clone());
        }
        let run = bb.run_seeded(model, &self.seeds)?;
        let status = status_from_termination(run.termination);
        match run.solution {
            Some(sol) => Ok(EngineSolution {
                objective: sol.objective,
                values: sol.values,
                status,
                effort: run.stats,
                root_basis: run.root_basis,
            }),
            None => Err(CoreError::BudgetExhausted),
        }
    }
}

/// Exhaustive-enumeration backend: exact and budget-aware, only viable on
/// small models ([`partita_ilp::MAX_EXHAUSTIVE_BINARIES`]).
///
/// [`SolveBudget::max_nodes`] caps the enumerated assignments and
/// [`SolveBudget::deadline`] is polled during the sweep; an exhausted budget
/// downgrades honestly through the uniform status mapping — it claims
/// [`OptimalityStatus::Optimal`] only after enumerating *every* assignment.
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveBackend {
    /// Cooperative cancellation flag, polled during enumeration (set by the
    /// portfolio racer when another backend has already won).
    pub cancel: Option<Arc<AtomicBool>>,
}

impl SolverBackend for ExhaustiveBackend {
    fn solve(&self, model: &Model, budget: &SolveBudget) -> Result<EngineSolution, CoreError> {
        let run = run_binary_exhaustive(
            model,
            budget.max_nodes,
            budget.deadline,
            self.cancel.as_deref(),
        )?;
        let status = status_from_termination(run.termination);
        let assignments = run.assignments_checked;
        match run.solution {
            Some(sol) => Ok(EngineSolution {
                objective: sol.objective,
                values: sol.values,
                status,
                root_basis: None,
                effort: BranchBoundStats {
                    nodes_explored: assignments,
                    threads: 1,
                    per_worker: vec![WorkerStats {
                        nodes_explored: assignments,
                        ..WorkerStats::default()
                    }],
                    ..BranchBoundStats::default()
                },
            }),
            // A completed enumeration with no feasible assignment is a
            // proof of infeasibility; a truncated one proves nothing.
            None if run.termination == Termination::Optimal => {
                Err(CoreError::Infeasible { path: None })
            }
            None => Err(CoreError::BudgetExhausted),
        }
    }
}

/// Greedy backend: wraps [`crate::baseline::solve_greedy`] and encodes its
/// selection back into model space so it goes through the same decode and
/// verification path as the exact backends.
///
/// Constructed internally by [`crate::Solver`]; the greedy heuristic needs
/// the instance, IMP database and variable mapping, which only the solver
/// holds.
#[derive(Debug, Clone)]
pub struct GreedyBackend<'a> {
    instance: &'a Instance,
    db: &'a ImpDb,
    gains: &'a RequiredGains,
    map: &'a VarMap,
}

impl<'a> GreedyBackend<'a> {
    pub(crate) fn new(
        instance: &'a Instance,
        db: &'a ImpDb,
        gains: &'a RequiredGains,
        map: &'a VarMap,
    ) -> GreedyBackend<'a> {
        GreedyBackend {
            instance,
            db,
            gains,
            map,
        }
    }
}

impl SolverBackend for GreedyBackend<'_> {
    fn solve(&self, model: &Model, _budget: &SolveBudget) -> Result<EngineSolution, CoreError> {
        let selection = crate::baseline::solve_greedy(self.instance, self.db, self.gains)?;
        let chosen: Vec<ImpId> = selection.chosen().iter().map(|imp| imp.id).collect();
        let values = encode_selection(model, self.map, self.db, &chosen);
        // The greedy heuristic knows nothing about constraints that only
        // exist in the model (power budgets, Problem 1 shape ties); a
        // selection that violates them is a greedy failure, consistent with
        // greedy's documented incompleteness.
        if !model.is_feasible(&values, 1e-6) {
            return Err(CoreError::Infeasible { path: None });
        }
        Ok(EngineSolution {
            objective: model.objective().eval(&values),
            values,
            status: OptimalityStatus::Heuristic,
            root_basis: None,
            effort: BranchBoundStats {
                threads: 1,
                ..BranchBoundStats::default()
            },
        })
    }
}

/// Encodes a set of chosen IMPs as a full model-space assignment: the
/// matching `x` variables and the `z` indicators of every IP they use.
pub(crate) fn encode_selection(
    model: &Model,
    map: &VarMap,
    db: &ImpDb,
    chosen: &[ImpId],
) -> Vec<f64> {
    let mut values = vec![0.0; model.num_vars()];
    for &id in chosen {
        let Some(imp) = db.get(id) else { continue };
        let Some(Some(xv)) = map.x.get(id.index()) else {
            continue;
        };
        values[xv.index()] = 1.0;
        for ip in &imp.ips {
            if let Some(zv) = map.z.get(ip) {
                values[zv.index()] = 1.0;
            }
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_are_snake_case() {
        assert_eq!(Backend::BranchBound.to_string(), "branch_bound");
        assert_eq!(Backend::Greedy.to_string(), "greedy");
        assert_eq!(Backend::Lagrangian.to_string(), "lagrangian");
        assert_eq!(Backend::ConflictEnum.to_string(), "conflict_enum");
        assert_eq!(Backend::Portfolio.to_string(), "portfolio");
        assert_eq!(
            OptimalityStatus::FeasibleBudgetExhausted.to_string(),
            "feasible_budget_exhausted"
        );
    }

    #[test]
    fn backend_all_is_complete_and_unique() {
        let mut names: Vec<&str> = Backend::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Backend::ALL.len());
        assert!(Backend::ALL.contains(&Backend::default()));
        assert!(Backend::BranchBound.is_exact());
        assert!(Backend::Portfolio.is_exact());
        assert!(!Backend::Greedy.is_exact());
    }

    #[test]
    fn every_termination_downgrades_honestly() {
        assert_eq!(
            status_from_termination(Termination::Optimal),
            OptimalityStatus::Optimal
        );
        for t in [
            Termination::NodeLimit,
            Termination::Deadline,
            Termination::Cancelled,
        ] {
            assert_eq!(
                status_from_termination(t),
                OptimalityStatus::FeasibleBudgetExhausted,
                "{t:?} must never map to an optimality claim"
            );
        }
    }

    #[test]
    fn default_budget_falls_back_to_greedy() {
        let b = SolveBudget::default();
        assert_eq!(b.max_nodes, 200_000);
        assert_eq!(b.fallback, Some(Backend::Greedy));
        assert!(b.deadline.is_none());
        assert!(b.threads >= 1);
        assert_eq!(b.with_threads(0).threads, 1);
    }

    #[test]
    fn trace_json_is_well_formed() {
        let trace = SolveTrace {
            backend: Backend::BranchBound,
            status: OptimalityStatus::Optimal,
            num_vars: 7,
            num_constraints: 9,
            num_imps: 4,
            nodes_explored: 3,
            nodes_pruned: 1,
            incumbent_updates: 2,
            simplex_iterations: 42,
            phase1_pivots: 12,
            phase2_pivots: 20,
            dual_pivots: 5,
            lex_pivots: 5,
            tableau_builds: 4,
            scratch_reuses: 3,
            bland_activations: 1,
            warm_start_accepted: true,
            vars_fixed: 2,
            basis_reused: true,
            threads: 2,
            worker_nodes: vec![2, 1],
            worker_steals: vec![1, 1],
            imp_generation: Duration::from_micros(10),
            formulation: Duration::from_micros(20),
            solve: Duration::from_micros(30),
            decode: Duration::from_micros(40),
        };
        let json = crate::telemetry::Event::SolveFinished {
            trace: trace.clone(),
        }
        .to_json();
        // The deprecated shim must keep emitting identical bytes.
        #[allow(deprecated)]
        let via_shim = trace.to_json();
        assert_eq!(json, via_shim);
        assert!(json.starts_with("{\"schema\":1,\"event\":\"solve_finished\""));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"backend\":\"branch_bound\""));
        assert!(json.contains("\"status\":\"optimal\""));
        assert!(json.contains("\"simplex_iterations\":42"));
        assert!(json.contains("\"phase1_pivots\":12"));
        assert!(json.contains("\"phase2_pivots\":20"));
        assert!(json.contains("\"dual_pivots\":5"));
        assert!(json.contains("\"lex_pivots\":5"));
        assert!(json.contains("\"tableau_builds\":4"));
        assert!(json.contains("\"scratch_reuses\":3"));
        assert!(json.contains("\"bland_activations\":1"));
        assert!(json.contains("\"warm_start_accepted\":true"));
        assert!(json.contains("\"basis_reused\":true"));
        assert!(json.contains("\"threads\":2"));
        assert!(json.contains("\"worker_nodes\":[2,1]"));
        assert!(json.contains("\"worker_steals\":[1,1]"));
        assert!(json.contains("\"total_us\":100"));
        // Balanced braces and quotes (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn trace_total_sums_phases() {
        let trace = SolveTrace {
            formulation: Duration::from_millis(2),
            solve: Duration::from_millis(3),
            ..SolveTrace::default()
        };
        assert_eq!(trace.total(), Duration::from_millis(5));
    }
}
