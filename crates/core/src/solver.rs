//! The optimal S-instruction selector.

use std::fmt;
use std::sync::Arc;

use partita_mop::{AreaTenths, CallSiteId, Cycles, PathId};

use crate::engine::{
    encode_selection, Backend, BranchBoundBackend, CutPolicy, EngineSolution, ExhaustiveBackend,
    GreedyBackend, OptimalityStatus, SolveBudget, SolveTrace, SolverBackend,
};
use crate::formulate::{build_model, decode, VarMap};
use crate::telemetry::{Event, Phase, SpanTimer, TelemetrySink};
use crate::{ConflictEnumBackend, CoreError, Imp, ImpDb, ImpId, Instance, LagrangianBackend};

/// Which formulation to solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProblemKind {
    /// The restricted formulation: no software-implementation parallel
    /// codes, and s-calls to the same function implemented identically.
    Problem1,
    /// The general formulation with SC-PC conflict constraints.
    #[default]
    Problem2,
}

impl ProblemKind {
    /// The snake_case name used in telemetry events.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProblemKind::Problem1 => "problem1",
            ProblemKind::Problem2 => "problem2",
        }
    }
}

impl fmt::Display for ProblemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Required performance gains `T_k`, held in canonical form.
///
/// Construction normalizes the specification so *equal requirements compare
/// equal* regardless of how they were written: per-path entries are sorted by
/// path, later duplicates win, zero requirements are dropped, and an
/// all-zero per-path spec collapses to the uniform-zero requirement. This
/// makes `RequiredGains` safe to use as (part of) a solve-cache key — e.g.
/// `per_path([(p, 0)])` equals `uniform(0)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequiredGains(Gains);

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Gains {
    /// The same requirement on every execution path (the paper's RG sweep).
    Uniform(Cycles),
    /// Per-path requirements, sorted by path, no zero entries; unlisted
    /// paths require zero.
    PerPath(Vec<(PathId, Cycles)>),
}

impl RequiredGains {
    /// The same requirement on every execution path (the paper's RG sweep).
    #[must_use]
    pub fn uniform(gain: Cycles) -> RequiredGains {
        RequiredGains(Gains::Uniform(gain))
    }

    /// Individual per-path requirements; unlisted paths require zero.
    ///
    /// The entries are canonicalized: sorted by path, with a later entry for
    /// the same path overriding an earlier one, and zero entries dropped (an
    /// unlisted path already requires zero). An empty or all-zero spec is
    /// the uniform-zero requirement.
    #[must_use]
    pub fn per_path(entries: impl IntoIterator<Item = (PathId, Cycles)>) -> RequiredGains {
        let mut canon: Vec<(PathId, Cycles)> = Vec::new();
        for (path, gain) in entries {
            match canon.iter_mut().find(|(p, _)| *p == path) {
                Some(slot) => slot.1 = gain,
                None => canon.push((path, gain)),
            }
        }
        canon.retain(|&(_, g)| g != Cycles::ZERO);
        canon.sort_unstable_by_key(|&(p, _)| p);
        if canon.is_empty() {
            RequiredGains(Gains::Uniform(Cycles::ZERO))
        } else {
            RequiredGains(Gains::PerPath(canon))
        }
    }

    /// The required gain for one path.
    #[must_use]
    pub fn for_path(&self, path: PathId) -> Cycles {
        match &self.0 {
            Gains::Uniform(g) => *g,
            Gains::PerPath(v) => v
                .iter()
                .find(|(p, _)| *p == path)
                .map(|(_, g)| *g)
                .unwrap_or(Cycles::ZERO),
        }
    }

    /// `true` when the same gain is required on every path.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        matches!(self.0, Gains::Uniform(_))
    }

    /// The uniform requirement, when there is one (`None` for genuinely
    /// per-path gains). Used by sweep telemetry to tag points with their RG.
    #[must_use]
    pub fn as_uniform(&self) -> Option<Cycles> {
        match &self.0 {
            Gains::Uniform(g) => Some(*g),
            Gains::PerPath(_) => None,
        }
    }
}

impl Default for RequiredGains {
    fn default() -> Self {
        RequiredGains::uniform(Cycles::ZERO)
    }
}

/// Solve options, built fluently:
///
/// ```
/// use partita_core::{Backend, RequiredGains, SolveBudget, SolveOptions};
/// use partita_mop::Cycles;
///
/// let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(1500)))
///     .backend(Backend::BranchBound)
///     .budget(SolveBudget::default().with_max_nodes(10_000))
///     .power_budget_mw(250);
/// assert_eq!(opts.power_budget(), Some(250));
/// ```
///
/// The fields are not public: construct via [`SolveOptions::problem1`],
/// [`SolveOptions::problem2`] or [`SolveOptions::for_problem`], refine with
/// the fluent setters and read back through the accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveOptions {
    pub(crate) problem: ProblemKind,
    pub(crate) gains: RequiredGains,
    pub(crate) power_budget_mw: Option<u64>,
    pub(crate) backend: Backend,
    pub(crate) budget: SolveBudget,
    pub(crate) warm_start: bool,
    pub(crate) hint: Option<Vec<ImpId>>,
    pub(crate) audit: bool,
    pub(crate) cut_policy: CutPolicy,
    /// Racer line-up for [`Backend::Portfolio`] (`None` = the default
    /// line-up, see `docs/BACKENDS.md`). Ignored by every other backend.
    pub(crate) racers: Option<Vec<Backend>>,
    /// Retained root-LP basis from a previous same-shaped solve (set by the
    /// delta/sweep layers, never by callers directly). Like `hint` and
    /// `audit`, this can never change the returned selection — only the
    /// work done — and is excluded from sweep cache keys.
    pub(crate) root_basis: Option<Arc<partita_ilp::Basis>>,
}

impl SolveOptions {
    fn with_defaults(problem: ProblemKind, gains: RequiredGains) -> SolveOptions {
        SolveOptions {
            problem,
            gains,
            power_budget_mw: None,
            backend: Backend::default(),
            budget: SolveBudget::default(),
            warm_start: true,
            hint: None,
            audit: crate::engine::default_audit(),
            cut_policy: CutPolicy::default(),
            racers: None,
            root_basis: None,
        }
    }

    /// Problem 2 (the general formulation, the default) with the given
    /// gains, branch-and-bound backend, default budget and warm-starting
    /// enabled.
    #[must_use]
    pub fn problem2(gains: RequiredGains) -> SolveOptions {
        SolveOptions::with_defaults(ProblemKind::Problem2, gains)
    }

    /// Problem 1 (the restricted formulation) with the given gains and the
    /// same defaults as [`SolveOptions::problem2`].
    #[must_use]
    pub fn problem1(gains: RequiredGains) -> SolveOptions {
        SolveOptions::with_defaults(ProblemKind::Problem1, gains)
    }

    /// Either formulation, picked at runtime (drivers that sweep both).
    #[must_use]
    pub fn for_problem(problem: ProblemKind, gains: RequiredGains) -> SolveOptions {
        SolveOptions::with_defaults(problem, gains)
    }

    /// Caps the selection's combined power draw in milliwatts (the paper
    /// carries power per IMP; this is the natural constraint it supports).
    #[must_use]
    pub fn power_budget_mw(mut self, budget: u64) -> SolveOptions {
        self.power_budget_mw = Some(budget);
        self
    }

    /// Switches the solver backend.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> SolveOptions {
        self.backend = backend;
        self
    }

    /// Overrides the solve budget.
    #[must_use]
    pub fn budget(mut self, budget: SolveBudget) -> SolveOptions {
        self.budget = budget;
        self
    }

    /// Enables or disables greedy warm-starting of branch-and-bound (an
    /// infeasible greedy selection is silently skipped; the other backends
    /// ignore this).
    #[must_use]
    pub fn warm_start(mut self, warm_start: bool) -> SolveOptions {
        self.warm_start = warm_start;
        self
    }

    /// Seeds branch-and-bound with a caller-supplied candidate selection as
    /// an extra warm-start incumbent, alongside (not instead of) the greedy
    /// warm start. The sweep layer chains the previous RG point's optimum
    /// through this hook; an infeasible hint is silently skipped, so the
    /// returned selection is never affected — only the search effort.
    #[must_use]
    pub fn warm_start_hint(mut self, chosen: Vec<ImpId>) -> SolveOptions {
        self.hint = Some(chosen);
        self
    }

    /// Which formulation.
    #[must_use]
    pub fn problem(&self) -> ProblemKind {
        self.problem
    }

    /// Required gains.
    #[must_use]
    pub fn gains(&self) -> &RequiredGains {
        &self.gains
    }

    /// Optional power budget in milliwatts.
    #[must_use]
    pub fn power_budget(&self) -> Option<u64> {
        self.power_budget_mw
    }

    /// Which solver backend answers the call.
    #[must_use]
    pub fn solver_backend(&self) -> Backend {
        self.backend
    }

    /// Work limits and fallback policy.
    #[must_use]
    pub fn solve_budget(&self) -> &SolveBudget {
        &self.budget
    }

    /// Whether greedy warm-starting is enabled.
    #[must_use]
    pub fn warm_start_enabled(&self) -> bool {
        self.warm_start
    }

    /// The caller-supplied warm-start candidate, if any.
    #[must_use]
    pub fn hint(&self) -> Option<&[ImpId]> {
        self.hint.as_deref()
    }

    /// Enables or disables the independent post-solve audit
    /// ([`crate::verify::SelectionAuditor`]): every returned selection is
    /// re-verified against the raw instance and database, and violations
    /// surface as [`CoreError::AuditFailed`]. The default is read once from
    /// the `PARTITA_AUDIT` environment variable (off when unset or `0`).
    #[must_use]
    pub fn audit(mut self, audit: bool) -> SolveOptions {
        self.audit = audit;
        self
    }

    /// Whether the post-solve audit runs.
    #[must_use]
    pub fn audit_enabled(&self) -> bool {
        self.audit
    }

    /// Switches lifted-cover cut separation (see [`CutPolicy`]). Cuts never
    /// exclude an integer point, so the returned selection is identical
    /// under every policy — only the search effort changes.
    #[must_use]
    pub fn cut_policy(mut self, policy: CutPolicy) -> SolveOptions {
        self.cut_policy = policy;
        self
    }

    /// The active cut policy.
    #[must_use]
    pub fn cut_policy_active(&self) -> CutPolicy {
        self.cut_policy
    }

    /// Overrides the [`Backend::Portfolio`] racer line-up. [`Backend::Portfolio`]
    /// entries are ignored (a race cannot nest a race); an empty line-up
    /// makes the portfolio exhaust immediately and defer to the budget's
    /// fallback. Other backends ignore this knob.
    ///
    /// ```
    /// use partita_core::{Backend, SolveOptions};
    ///
    /// let opts = SolveOptions::default()
    ///     .backend(Backend::Portfolio)
    ///     .racers(vec![Backend::BranchBound, Backend::ConflictEnum]);
    /// assert_eq!(
    ///     opts.racer_lineup(),
    ///     Some(&[Backend::BranchBound, Backend::ConflictEnum][..])
    /// );
    /// ```
    #[must_use]
    pub fn racers(mut self, racers: Vec<Backend>) -> SolveOptions {
        self.racers = Some(racers);
        self
    }

    /// The configured racer line-up (`None` = the default line-up).
    #[must_use]
    pub fn racer_lineup(&self) -> Option<&[Backend]> {
        self.racers.as_deref()
    }
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions::problem2(RequiredGains::default())
    }
}

/// A decoded selection: the chosen IMPs and their cost/gain accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    chosen: Vec<Imp>,
    /// ILP objective value (total area in tenths).
    pub objective: f64,
    /// Area of the instantiated IPs (each counted once).
    pub ip_area: AreaTenths,
    /// Total interface area of the chosen IMPs.
    pub interface_area: AreaTenths,
    /// Achieved gain per execution path.
    pub gain_per_path: Vec<(PathId, Cycles)>,
    /// How much trust this selection deserves (proven optimal, best feasible
    /// under an exhausted budget, heuristic fallback, …).
    pub status: OptimalityStatus,
    /// End-to-end solve telemetry. Default-constructed (all zeros) when the
    /// selection was built outside the solver pipeline, e.g. by a standalone
    /// baseline heuristic.
    pub trace: SolveTrace,
}

impl Selection {
    pub(crate) fn from_chosen(
        instance: &Instance,
        chosen: Vec<Imp>,
        objective: f64,
        status: OptimalityStatus,
    ) -> Selection {
        let mut ips: Vec<_> = chosen.iter().flat_map(|i| i.ips.iter().copied()).collect();
        ips.sort_unstable();
        ips.dedup();
        let ip_area: AreaTenths = ips
            .iter()
            .filter_map(|&ip| instance.library.block(ip))
            .map(|b| b.area())
            .sum();
        let interface_area: AreaTenths = chosen.iter().map(|i| i.interface_area).sum();
        let gain_per_path = instance
            .effective_paths()
            .iter()
            .map(|p| {
                let g: Cycles = chosen
                    .iter()
                    .filter(|imp| p.scalls.contains(&imp.scall))
                    .map(|imp| imp.gain)
                    .sum();
                (p.id, g)
            })
            .collect();
        Selection {
            chosen,
            objective,
            ip_area,
            interface_area,
            gain_per_path,
            status,
            trace: SolveTrace::default(),
        }
    }

    /// The chosen IMPs, in s-call order.
    #[must_use]
    pub fn chosen(&self) -> &[Imp] {
        &self.chosen
    }

    /// Total achieved gain **G**: the sum of the chosen IMPs' gains (the
    /// paper's G column).
    #[must_use]
    pub fn total_gain(&self) -> Cycles {
        self.chosen.iter().map(|i| i.gain).sum()
    }

    /// Total area **A** = IP areas (once each) + interface areas.
    #[must_use]
    pub fn total_area(&self) -> AreaTenths {
        self.ip_area + self.interface_area
    }

    /// Number of selected s-calls (the paper's **O** column).
    #[must_use]
    pub fn selected_scall_count(&self) -> usize {
        let mut scs: Vec<CallSiteId> = self.chosen.iter().map(|i| i.scall).collect();
        scs.sort_unstable();
        scs.dedup();
        scs.len()
    }

    /// Number of S-instructions after merging (the paper's **S** column).
    #[must_use]
    pub fn s_instruction_count(&self) -> usize {
        crate::merge::s_instruction_count(&self.chosen)
    }

    /// Independently verifies this selection against the problem's rules:
    /// at most one IMP per s-call (Eq. 1), every path's required gain
    /// (Eq. 2), the SC-PC selection rule, and the optional power budget.
    ///
    /// Used by the test-suite to cross-check the ILP solver and the
    /// baseline heuristics against an implementation that shares no code
    /// with the formulation.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSelection`] describing the first violation found.
    pub fn verify(&self, instance: &Instance, options: &SolveOptions) -> Result<(), CoreError> {
        // Eq. 1: one implementation per s-call.
        let mut seen: Vec<CallSiteId> = Vec::new();
        for imp in &self.chosen {
            if seen.contains(&imp.scall) {
                return Err(CoreError::InvalidSelection(format!(
                    "{} has two implementations",
                    imp.scall
                )));
            }
            seen.push(imp.scall);
        }
        // SC-PC selection rule: a consumed s-call must not be implemented.
        for imp in &self.chosen {
            for consumed in imp.parallel.consumed_scalls() {
                if seen.contains(consumed) {
                    return Err(CoreError::InvalidSelection(format!(
                        "{consumed} is both implemented and used as software parallel code"
                    )));
                }
            }
        }
        // Eq. 2 per path.
        for path in instance.effective_paths() {
            let required = options.gains.for_path(path.id);
            let achieved: Cycles = self
                .chosen
                .iter()
                .filter(|imp| path.scalls.contains(&imp.scall))
                .map(|imp| imp.gain)
                .sum();
            if achieved < required {
                return Err(CoreError::InvalidSelection(format!(
                    "{} achieves {} of required {}",
                    path.id,
                    achieved.get(),
                    required.get()
                )));
            }
        }
        // Power budget.
        if let Some(budget) = options.power_budget_mw {
            let draw: u64 = self.chosen.iter().map(|i| i.power_mw).sum();
            if draw > budget {
                return Err(CoreError::InvalidSelection(format!(
                    "power draw {draw} mW exceeds budget {budget} mW"
                )));
            }
        }
        Ok(())
    }
}

/// The optimal S-instruction generator.
///
/// See the crate docs for a full example.
#[derive(Clone)]
pub struct Solver<'a> {
    instance: &'a Instance,
    imps: Option<Arc<ImpDb>>,
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl fmt::Debug for Solver<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("instance", &self.instance)
            .field("imps", &self.imps)
            .field("sink", &self.sink.as_ref().map(|_| "dyn TelemetrySink"))
            .finish()
    }
}

impl<'a> Solver<'a> {
    /// Creates a solver for `instance`.
    #[must_use]
    pub fn new(instance: &'a Instance) -> Solver<'a> {
        Solver {
            instance,
            imps: None,
            sink: None,
        }
    }

    /// Supplies a prebuilt IMP database (otherwise [`ImpDb::generate`] is
    /// used). Accepts an owned [`ImpDb`] or an `Arc<ImpDb>` handle — sharing
    /// the handle avoids deep-cloning the database per solve.
    #[must_use]
    pub fn with_imps(mut self, imps: impl Into<Arc<ImpDb>>) -> Solver<'a> {
        self.imps = Some(imps.into());
        self
    }

    /// Routes this solver's telemetry events into `sink` instead of the
    /// process-wide [`crate::telemetry::global`] sink. Telemetry never
    /// affects the returned [`Selection`] — only what is observed.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> Solver<'a> {
        self.sink = Some(sink);
        self
    }

    /// Builds the ILP model this solver would hand to the backend, without
    /// solving it. Exposed so differential harnesses can drive the raw
    /// `partita_ilp` entry points (fresh-allocation vs scratch-reuse, warm
    /// vs cold) against real formulations instead of hand-built toys.
    ///
    /// # Errors
    ///
    /// The same formulation errors as [`Solver::solve`].
    pub fn formulate(&self, options: &SolveOptions) -> Result<partita_ilp::Model, CoreError> {
        let generated;
        let db: &ImpDb = match &self.imps {
            Some(db) => db,
            None => {
                generated = ImpDb::generate(self.instance);
                &generated
            }
        };
        let (model, _map) = build_model(
            self.instance,
            db,
            options.problem,
            &options.gains,
            options.power_budget_mw,
        )?;
        Ok(model)
    }

    /// Solves through the configured backend (branch-and-bound by default,
    /// which proves optimality when its budget suffices).
    ///
    /// Budget exhaustion is reported, not hidden: the returned selection's
    /// [`Selection::status`] says whether it is proven optimal, the best
    /// feasible incumbent under an exhausted budget, or a heuristic
    /// fallback. [`Selection::trace`] carries full solve telemetry.
    ///
    /// # Errors
    ///
    /// [`CoreError::Infeasible`] when no selection meets the required gains,
    /// [`CoreError::BudgetExhausted`] when the budget runs out with no
    /// feasible point and no (working) fallback, plus formulation errors.
    pub fn solve(&self, options: &SolveOptions) -> Result<Selection, CoreError> {
        let sink = crate::telemetry::resolve(self.sink.as_ref());
        let mut trace = SolveTrace::default();
        if sink.enabled() {
            sink.emit(&Event::SolveStarted {
                instance: self.instance.name.clone(),
                problem: options.problem,
                backend: options.backend,
                threads: options.budget.threads,
            });
        }

        let span = SpanTimer::start(Phase::ImpGeneration);
        let generated;
        let db: &ImpDb = match &self.imps {
            Some(db) => db,
            None => {
                generated = ImpDb::generate(self.instance);
                &generated
            }
        };
        trace.imp_generation = span.finish(sink);

        let span = SpanTimer::start(Phase::Formulation);
        let (model, map) = build_model(
            self.instance,
            db,
            options.problem,
            &options.gains,
            options.power_budget_mw,
        )?;
        trace.formulation = span.finish(sink);

        solve_prepared(self.instance, db, &model, &map, options, trace, sink).map(|(sel, _)| sel)
    }
}

/// Dispatch + decode over an already-built model: the shared tail of
/// [`Solver::solve`], also entered directly by the sweep and delta layers
/// when the formulation came out of a cache (the trace then carries the
/// *original* formulation time). Alongside the selection it returns the
/// root-LP basis retained by the branch-and-bound backend, which those
/// layers thread into the next same-shaped solve.
pub(crate) fn solve_prepared(
    instance: &Instance,
    db: &ImpDb,
    model: &partita_ilp::Model,
    map: &VarMap,
    options: &SolveOptions,
    mut trace: SolveTrace,
    sink: &dyn TelemetrySink,
) -> Result<(Selection, Option<Arc<partita_ilp::Basis>>), CoreError> {
    trace.num_vars = model.num_vars();
    trace.num_constraints = model.num_constraints();
    trace.num_imps = db.len();

    let span = SpanTimer::start(Phase::Solve);
    let (solution, backend) = dispatch(instance, db, options, model, map, sink)?;
    trace.solve = span.finish(sink);
    trace.backend = backend;
    trace.status = solution.status;
    trace.nodes_explored = solution.effort.nodes_explored;
    trace.nodes_pruned = solution.effort.nodes_pruned;
    trace.incumbent_updates = solution.effort.incumbent_updates;
    trace.simplex_iterations = solution.effort.simplex_iterations;
    trace.phase1_pivots = solution.effort.simplex_ops.phase1_pivots;
    trace.phase2_pivots = solution.effort.simplex_ops.phase2_pivots;
    trace.dual_pivots = solution.effort.simplex_ops.dual_pivots;
    trace.lex_pivots = solution.effort.simplex_ops.lex_pivots;
    trace.tableau_builds = solution.effort.simplex_ops.tableau_builds;
    trace.scratch_reuses = solution.effort.simplex_ops.scratch_reuses;
    trace.bland_activations = solution.effort.simplex_ops.bland_activations;
    trace.warm_start_accepted = solution.effort.warm_start_accepted;
    trace.vars_fixed = solution.effort.vars_fixed;
    trace.basis_reused = solution.effort.basis_reused;
    trace.threads = solution.effort.threads;
    trace.worker_nodes = solution
        .effort
        .per_worker
        .iter()
        .map(|w| w.nodes_explored)
        .collect();
    trace.worker_steals = solution
        .effort
        .per_worker
        .iter()
        .map(|w| w.steals)
        .collect();
    if sink.enabled() {
        for (i, w) in solution.effort.per_worker.iter().enumerate() {
            sink.emit(&Event::WorkerFinished {
                worker: i,
                nodes_explored: w.nodes_explored,
                nodes_pruned: w.nodes_pruned,
                steals: w.steals,
                simplex_iterations: w.simplex_iterations,
            });
        }
    }

    let span = SpanTimer::start(Phase::Decode);
    let root_basis = solution.root_basis.clone();
    let ilp_solution = partita_ilp::IlpSolution {
        objective: solution.objective,
        values: solution.values,
    };
    let chosen_ids = decode(db, map, &ilp_solution);
    let chosen: Vec<Imp> = chosen_ids
        .iter()
        .filter_map(|id| db.get(*id).cloned())
        .collect();
    // The fixed-charge indicators must agree with the decoded IP set.
    if cfg!(debug_assertions) {
        for (&ip, &zv) in &map.z {
            let used = chosen.iter().any(|imp| imp.uses_ip(ip));
            debug_assert!(
                !used || ilp_solution.is_set(zv),
                "indicator for {ip} must be set when the ip is used"
            );
        }
    }
    let mut selection =
        Selection::from_chosen(instance, chosen, ilp_solution.objective, solution.status);
    trace.decode = span.finish(sink);
    selection.trace = trace;
    if options.audit {
        crate::verify::SelectionAuditor::new(instance, db)
            .with_sink(sink)
            .audit(&selection, options)
            .into_result()?;
    }
    if sink.enabled() {
        sink.emit(&Event::SolveFinished {
            trace: selection.trace.clone(),
        });
    }
    Ok((selection, root_basis))
}

/// Seed candidates for the exact search backends: the caller's hint (e.g.
/// the previous sweep point's optimum) and the greedy selection. Infeasible
/// seeds are skipped inside every search, so seeding never changes the
/// returned optimum — only how much of the tree survives pruning.
fn build_seeds(
    instance: &Instance,
    db: &ImpDb,
    options: &SolveOptions,
    model: &partita_ilp::Model,
    map: &VarMap,
) -> Vec<Vec<f64>> {
    let mut seeds: Vec<Vec<f64>> = Vec::new();
    if let Some(hint) = &options.hint {
        seeds.push(encode_selection(model, map, db, hint));
    }
    if options.warm_start {
        if let Ok(sel) = crate::baseline::solve_greedy(instance, db, &options.gains) {
            let ids: Vec<_> = sel.chosen().iter().map(|imp| imp.id).collect();
            seeds.push(encode_selection(model, map, db, &ids));
        }
    }
    seeds
}

/// The once-per-s-call GUB groups (`Σ_j x_ij ≤ 1`) the lifted-cover
/// separator exploits, read off the variable map.
fn gub_groups(instance: &Instance, db: &ImpDb, map: &VarMap) -> Vec<Vec<partita_ilp::VarId>> {
    let mut groups = Vec::new();
    for sc in &instance.scalls {
        let group: Vec<partita_ilp::VarId> = db
            .for_scall(sc.id)
            .iter()
            .filter_map(|imp| map.x.get(imp.id.index()).copied().flatten())
            .collect();
        if !group.is_empty() {
            groups.push(group);
        }
    }
    groups
}

/// Routes the solve to the configured backend; on
/// [`CoreError::BudgetExhausted`] from *any* primary backend, retries once
/// with the budget's fallback backend.
///
/// Returns the solution and the backend that actually produced it.
fn dispatch(
    instance: &Instance,
    db: &ImpDb,
    options: &SolveOptions,
    model: &partita_ilp::Model,
    map: &VarMap,
    sink: &dyn TelemetrySink,
) -> Result<(EngineSolution, Backend), CoreError> {
    let budget = &options.budget;

    // Lifted-cover strengthening. The strengthened model has the same
    // variables (cuts only add rows), so decoding and seeding are
    // unaffected; a retained root basis is row-shaped, though, so cut
    // policies skip basis reuse.
    let strengthened;
    let mut node_cuts: Option<Arc<partita_ilp::cuts::CutSeparator>> = None;
    let model: &partita_ilp::Model = match options.cut_policy {
        CutPolicy::Off => model,
        CutPolicy::Root | CutPolicy::Node => {
            let groups = gub_groups(instance, db, map);
            let root = partita_ilp::cuts::strengthen_root(
                model,
                &groups,
                partita_ilp::simplex::SimplexOptions::default(),
            )?;
            strengthened = root.model;
            if options.cut_policy == CutPolicy::Node {
                node_cuts = Some(Arc::new(partita_ilp::cuts::CutSeparator::from_model(
                    &strengthened,
                    &groups,
                )));
            }
            &strengthened
        }
    };

    let primary: Result<(EngineSolution, Backend), CoreError> = match options.backend {
        Backend::Exhaustive => ExhaustiveBackend::default()
            .solve(model, budget)
            .map(|s| (s, Backend::Exhaustive)),
        Backend::Greedy => GreedyBackend::new(instance, db, &options.gains, map)
            .solve(model, budget)
            .map(|s| (s, Backend::Greedy)),
        Backend::BranchBound => BranchBoundBackend {
            seeds: build_seeds(instance, db, options, model, map),
            root_basis: if options.cut_policy == CutPolicy::Off {
                options.root_basis.clone()
            } else {
                None
            },
            cancel: None,
            shared_bound: None,
            node_cuts,
        }
        .solve(model, budget)
        .map(|s| (s, Backend::BranchBound)),
        Backend::Lagrangian => LagrangianBackend::new(instance, db, &options.gains, map)
            .with_seeds(build_seeds(instance, db, options, model, map))
            .solve(model, budget)
            .map(|s| (s, Backend::Lagrangian)),
        Backend::ConflictEnum => ConflictEnumBackend::new(instance, db, &options.gains, map)
            .with_seeds(build_seeds(instance, db, options, model, map))
            .solve(model, budget)
            .map(|s| (s, Backend::ConflictEnum)),
        Backend::Portfolio => crate::portfolio::run_race(
            instance,
            db,
            options,
            model,
            map,
            &build_seeds(instance, db, options, model, map),
            node_cuts,
            sink,
        ),
    };

    match (primary, budget.fallback) {
        (Err(CoreError::BudgetExhausted), Some(fallback)) => {
            let rescued = match fallback {
                Backend::Exhaustive => ExhaustiveBackend::default().solve(model, budget),
                // Falling back to a search backend that just ran dry would
                // exhaust again; route everything else to greedy.
                _ => GreedyBackend::new(instance, db, &options.gains, map).solve(model, budget),
            }?;
            Ok((
                EngineSolution {
                    status: OptimalityStatus::FallbackUsed,
                    ..rescued
                },
                fallback,
            ))
        }
        (result, _) => result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreError, Imp, ImpDb, ParallelChoice, SCall};
    use partita_interface::{InterfaceKind, TransferJob};
    use partita_ip::{IpBlock, IpFunction, IpId};

    /// A hand-built instance shaped like the paper's Fig. 9: three fir()
    /// calls, one IP; Problem 2 may run one call in software as the parallel
    /// code of another.
    fn three_firs() -> (Instance, ImpDb) {
        let mut inst = Instance::new("fig9");
        let ip = inst.library.add(
            IpBlock::builder("fir")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(3))
                .build(),
        );
        let t_sw = Cycles(1000);
        let a = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            t_sw,
            TransferJob::new(8, 8),
        ));
        let b = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            t_sw,
            TransferJob::new(8, 8),
        ));
        let c = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            t_sw,
            TransferJob::new(8, 8),
        ));
        inst.add_path(vec![a, b, c]);
        // Hand-built IMPs: plain IP gains 600 each; IMP for `b` that uses
        // the software fir `c` as parallel code gains 900.
        let mk = |sc, gain, par| {
            crate::Imp::new(
                sc,
                vec![ip],
                InterfaceKind::Type1,
                Cycles(gain),
                AreaTenths::from_tenths(2),
                par,
            )
        };
        let db = ImpDb::from_imps(vec![
            mk(a, 600, ParallelChoice::None),
            mk(b, 600, ParallelChoice::None),
            mk(c, 600, ParallelChoice::None),
            mk(b, 900, ParallelChoice::SwScalls(vec![c])),
        ]);
        (inst, db)
    }

    #[test]
    fn problem2_uses_software_parallel_code() {
        let (inst, db) = three_firs();
        // Requirement 1500: a(600) + b-with-sw-c(900) reaches it with two
        // IMPs; Problem 1 needs all three (1800).
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(1500)));
        let p2 = Solver::new(&inst)
            .with_imps(db.clone())
            .solve(&opts)
            .unwrap();
        assert_eq!(p2.chosen().len(), 2);
        assert!(p2
            .chosen()
            .iter()
            .any(|i| matches!(i.parallel, ParallelChoice::SwScalls(_))));

        let p1 = Solver::new(&inst)
            .with_imps(db)
            .solve(&SolveOptions::problem1(RequiredGains::uniform(Cycles(
                1500,
            ))))
            .unwrap();
        assert_eq!(p1.chosen().len(), 3);
        assert!(p1.total_area() > p2.total_area());
    }

    #[test]
    fn sc_pc_conflict_enforced() {
        let (inst, db) = three_firs();
        // Require 2100: cannot take the 900 variant AND implement c (600+600+900
        // violates the conflict), so the only way is 600*3 = 1800 < 2100 or
        // 600 + 900 = 1500 — infeasible either way above 1800.
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(2000)));
        let err = Solver::new(&inst).with_imps(db).solve(&opts).unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }));
    }

    #[test]
    fn selection_accounting() {
        let (inst, db) = three_firs();
        let sel = Solver::new(&inst)
            .with_imps(db)
            .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(
                1200,
            ))))
            .unwrap();
        assert_eq!(sel.ip_area, AreaTenths::from_units(3)); // IP once
        assert_eq!(sel.total_area(), sel.ip_area + sel.interface_area);
        assert!(sel.total_gain().get() >= 1200);
        assert_eq!(sel.gain_per_path.len(), 1);
        assert!(sel.selected_scall_count() <= 3);
        assert!(sel.s_instruction_count() <= sel.selected_scall_count());
    }

    #[test]
    fn generated_db_end_to_end() {
        let mut inst = Instance::new("gen");
        inst.library.add(
            IpBlock::builder("fir")
                .function(IpFunction::Fir)
                .rates(4, 4)
                .latency(8)
                .area(AreaTenths::from_units(3))
                .build(),
        );
        let sc = inst.add_scall(
            SCall::new(
                "fir",
                IpFunction::Fir,
                Cycles(5000),
                TransferJob::new(64, 64),
            )
            .with_freq(3),
        );
        inst.add_path(vec![sc]);
        let sel = Solver::new(&inst)
            .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(
                1000,
            ))))
            .unwrap();
        assert_eq!(sel.chosen().len(), 1);
        assert_eq!(sel.chosen()[0].ips, vec![IpId(0)]);
        assert!(sel.total_gain().get() >= 1000);
    }

    #[test]
    fn power_budget_constrains_the_selection() {
        // Two IMPs for one s-call: a fast power-hungry one and a slower
        // frugal one. The budget forces the frugal pick.
        let mut inst = Instance::new("power");
        let ip = inst.library.add(
            IpBlock::builder("fir")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(1))
                .build(),
        );
        let sc = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            Cycles(1000),
            TransferJob::new(8, 8),
        ));
        inst.add_path(vec![sc]);
        let db = ImpDb::from_imps(vec![
            Imp::new(
                sc,
                vec![ip],
                InterfaceKind::Type3,
                Cycles(900),
                AreaTenths::ZERO,
                ParallelChoice::None,
            )
            .with_power_mw(500),
            Imp::new(
                sc,
                vec![ip],
                InterfaceKind::Type0,
                Cycles(600),
                AreaTenths::ZERO,
                ParallelChoice::None,
            )
            .with_power_mw(100),
        ]);
        // Without a budget the higher-gain type-3 wins the area tie.
        let free = Solver::new(&inst)
            .with_imps(db.clone())
            .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(500))))
            .unwrap();
        assert_eq!(free.chosen()[0].interface, InterfaceKind::Type3);
        // A 200 mW budget forces the frugal type-0 implementation.
        let capped = Solver::new(&inst)
            .with_imps(db.clone())
            .solve(
                &SolveOptions::problem2(RequiredGains::uniform(Cycles(500))).power_budget_mw(200),
            )
            .unwrap();
        assert_eq!(capped.chosen()[0].interface, InterfaceKind::Type0);
        assert_eq!(capped.chosen()[0].power_mw, 100);
        // An impossible budget is infeasible.
        let err = Solver::new(&inst)
            .with_imps(db)
            .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(500))).power_budget_mw(50))
            .unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }));
    }

    /// Two s-calls with one 600-gain IMP each and a 700 requirement: the LP
    /// relaxation sets one x to 1 and the other to 1/6, whose rounding (to
    /// zero) misses the gain row — so a 1-node branch-and-bound run finds no
    /// incumbent and must exhaust its budget.
    fn needs_two_imps() -> (Instance, ImpDb) {
        let mut inst = Instance::new("two-needed");
        let ip = inst.library.add(
            IpBlock::builder("fir")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(2))
                .build(),
        );
        let a = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            Cycles(1000),
            TransferJob::new(8, 8),
        ));
        let b = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            Cycles(1000),
            TransferJob::new(8, 8),
        ));
        inst.add_path(vec![a, b]);
        let mk = |sc| {
            Imp::new(
                sc,
                vec![ip],
                InterfaceKind::Type1,
                Cycles(600),
                AreaTenths::from_tenths(2),
                ParallelChoice::None,
            )
        };
        let db = ImpDb::from_imps(vec![mk(a), mk(b)]);
        (inst, db)
    }

    #[test]
    fn one_node_budget_falls_back_to_greedy() {
        let (inst, db) = needs_two_imps();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(700)))
            .warm_start(false)
            .budget(crate::SolveBudget::default().with_max_nodes(1));
        let sel = Solver::new(&inst).with_imps(db).solve(&opts).unwrap();
        assert_eq!(sel.status, crate::OptimalityStatus::FallbackUsed);
        assert_eq!(sel.trace.backend, crate::Backend::Greedy);
        // The fallback selection is still feasible end to end.
        sel.verify(&inst, &opts).unwrap();
        assert!(sel.total_gain().get() >= 700);
    }

    #[test]
    fn one_node_budget_without_fallback_errors() {
        let (inst, db) = needs_two_imps();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(700)))
            .warm_start(false)
            .budget(
                crate::SolveBudget::default()
                    .with_max_nodes(1)
                    .with_fallback(None),
            );
        let err = Solver::new(&inst).with_imps(db).solve(&opts).unwrap_err();
        assert_eq!(err, CoreError::BudgetExhausted);
    }

    #[test]
    fn warm_start_survives_budget_exhaustion() {
        // Same 1-node budget, but the greedy warm start seeds a feasible
        // incumbent, so branch-and-bound reports the best incumbent instead
        // of falling back.
        let (inst, db) = needs_two_imps();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(700)))
            .budget(crate::SolveBudget::default().with_max_nodes(1));
        let sel = Solver::new(&inst).with_imps(db).solve(&opts).unwrap();
        assert_eq!(sel.status, crate::OptimalityStatus::FeasibleBudgetExhausted);
        assert!(sel.trace.warm_start_accepted);
        sel.verify(&inst, &opts).unwrap();
    }

    #[test]
    fn exhaustive_backend_matches_branch_bound() {
        let (inst, db) = three_firs();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(1500)));
        let bb = Solver::new(&inst)
            .with_imps(db.clone())
            .solve(&opts)
            .unwrap();
        let ex = Solver::new(&inst)
            .with_imps(db)
            .solve(&opts.clone().backend(crate::Backend::Exhaustive))
            .unwrap();
        assert!((bb.objective - ex.objective).abs() < 1e-6);
        assert_eq!(ex.status, crate::OptimalityStatus::Optimal);
        assert_eq!(ex.trace.backend, crate::Backend::Exhaustive);
        // Exhaustive explored every binary assignment of the model.
        assert!(ex.trace.nodes_explored >= 1);
    }

    #[test]
    fn greedy_backend_reports_heuristic_status() {
        let (inst, db) = three_firs();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(1200)))
            .backend(crate::Backend::Greedy);
        let sel = Solver::new(&inst).with_imps(db).solve(&opts).unwrap();
        assert_eq!(sel.status, crate::OptimalityStatus::Heuristic);
        sel.verify(&inst, &opts).unwrap();
    }

    #[test]
    fn trace_is_populated_on_default_solve() {
        let (inst, db) = three_firs();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(1500)));
        let sel = Solver::new(&inst).with_imps(db).solve(&opts).unwrap();
        assert_eq!(sel.status, crate::OptimalityStatus::Optimal);
        let t = &sel.trace;
        assert_eq!(t.backend, crate::Backend::BranchBound);
        assert!(t.num_vars > 0 && t.num_constraints > 0 && t.num_imps == 4);
        assert!(t.nodes_explored >= 1);
        assert!(t.simplex_iterations >= 1);
        // The JSON view round-trips the same numbers.
        let json = crate::telemetry::Event::SolveFinished { trace: t.clone() }.to_json();
        assert!(json.contains(&format!("\"nodes_explored\":{}", t.nodes_explored)));
    }

    #[test]
    fn required_gains_canonical_form() {
        use partita_mop::PathId;
        // A zero per-path entry is the same requirement as uniform zero.
        assert_eq!(
            RequiredGains::per_path(vec![(PathId(0), Cycles::ZERO)]),
            RequiredGains::uniform(Cycles::ZERO)
        );
        assert_eq!(RequiredGains::per_path(vec![]), RequiredGains::default());
        // Order-insensitive; a later duplicate wins; zeros are dropped.
        let a = RequiredGains::per_path(vec![
            (PathId(1), Cycles(5)),
            (PathId(0), Cycles(7)),
            (PathId(2), Cycles(3)),
            (PathId(2), Cycles::ZERO),
            (PathId(0), Cycles(9)),
        ]);
        let b = RequiredGains::per_path(vec![(PathId(0), Cycles(9)), (PathId(1), Cycles(5))]);
        assert_eq!(a, b);
        assert!(!a.is_uniform());
        assert_eq!(a.for_path(PathId(0)), Cycles(9));
        assert_eq!(a.for_path(PathId(2)), Cycles::ZERO);
        // Unlisted paths require zero.
        assert_eq!(a.for_path(PathId(17)), Cycles::ZERO);
    }

    #[test]
    fn builder_accessors_round_trip() {
        let opts = SolveOptions::problem1(RequiredGains::uniform(Cycles(42)))
            .backend(crate::Backend::Exhaustive)
            .budget(crate::SolveBudget::default().with_max_nodes(7))
            .power_budget_mw(99)
            .warm_start(false)
            .warm_start_hint(vec![ImpId(3)]);
        assert_eq!(opts.problem(), ProblemKind::Problem1);
        assert_eq!(opts.gains(), &RequiredGains::uniform(Cycles(42)));
        assert_eq!(opts.solver_backend(), crate::Backend::Exhaustive);
        assert_eq!(opts.solve_budget().max_nodes, 7);
        assert_eq!(opts.power_budget(), Some(99));
        assert!(!opts.warm_start_enabled());
        assert_eq!(opts.hint(), Some(&[ImpId(3)][..]));
    }

    #[test]
    fn warm_start_hint_does_not_change_the_selection() {
        let (inst, db) = three_firs();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(1500)));
        let cold = Solver::new(&inst)
            .with_imps(db.clone())
            .solve(&opts)
            .unwrap();
        let ids: Vec<ImpId> = cold.chosen().iter().map(|i| i.id).collect();
        // Seeding the known optimum (or garbage) never changes the result.
        for hint in [ids, vec![ImpId(999)]] {
            let hinted = Solver::new(&inst)
                .with_imps(db.clone())
                .solve(&opts.clone().warm_start_hint(hint))
                .unwrap();
            assert_eq!(hinted.chosen(), cold.chosen());
            assert_eq!(hinted.total_area(), cold.total_area());
        }
    }

    #[test]
    fn zero_requirement_selects_nothing() {
        let (inst, db) = three_firs();
        let sel = Solver::new(&inst)
            .with_imps(db)
            .solve(&SolveOptions::default())
            .unwrap();
        assert!(sel.chosen().is_empty());
        assert_eq!(sel.total_area(), AreaTenths::ZERO);
        assert_eq!(sel.total_gain(), Cycles::ZERO);
    }

    use partita_mop::AreaTenths;
}
