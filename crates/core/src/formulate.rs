//! ILP formulation of the optimal S-instruction generation problem (§4.1).

use std::collections::BTreeMap;

use partita_ilp::{fixed_charge, Model, Relation, Sense, VarId};
use partita_ip::IpId;
use partita_mop::{Cycles, PathId};

use crate::solver::{ProblemKind, RequiredGains};
use crate::{sc_pc_conflicts, CoreError, ImpDb, ImpId, Instance, ParallelChoice};

/// Mapping from decision variables back to IMPs and IPs.
#[derive(Debug, Clone)]
pub(crate) struct VarMap {
    /// `x_ij` per IMP; `None` when the IMP is excluded (Problem 1 filters,
    /// or retired in the database at build time outside delta mode).
    pub x: Vec<Option<VarId>>,
    /// `z_k` per IP that any active IMP uses.
    pub z: BTreeMap<IpId, VarId>,
}

/// A model built for in-place patching by the incremental layer
/// ([`crate::delta`]): gain rows are always emitted (and indexed), and
/// retired IMPs keep their columns, pinned to zero by bounds.
#[derive(Debug, Clone)]
pub(crate) struct DeltaFormulation {
    pub model: Model,
    pub map: VarMap,
    /// Constraint index of every path's gain row, so a required-gain edit
    /// is a pure right-hand-side patch.
    pub gain_rows: Vec<(PathId, usize)>,
}

/// Builds the 0/1 ILP.
///
/// Constraints:
/// * Eq. 1 — at most one IMP per s-call;
/// * Eq. 2 — per-path required gain;
/// * fixed-charge links `Σ_ij s_ijk·x_ij ≤ M·z_k` (Taha \[10\]);
/// * Problem 2 only: SC-PC conflict pairs `x_a + x_b ≤ 1`;
/// * Problem 1 only: SwScalls IMPs are excluded, and s-calls to the same
///   function are tied to identical implementation shapes.
///
/// Objective: minimise `Σ_k z_k·a_k + Σ_ij x_ij·c_ij` (areas in tenths).
///
/// IMPs retired in `db` get no column (`x` holds `None`), exactly like the
/// Problem 1 filter, so they can never be selected.
pub(crate) fn build_model(
    instance: &Instance,
    db: &ImpDb,
    problem: ProblemKind,
    gains: &RequiredGains,
    power_budget_mw: Option<u64>,
) -> Result<(Model, VarMap), CoreError> {
    let (model, map, _) = build_model_impl(instance, db, problem, gains, power_budget_mw, false)?;
    Ok((model, map))
}

/// Builds the patchable variant of [`build_model`] for the incremental
/// layer. Two deliberate differences:
///
/// * Every path's gain row is emitted even when its requirement is zero
///   (`Σ g·x ≥ 0` is redundant, so selections are unaffected), and its
///   constraint index is recorded — a required-gain edit becomes a pure
///   RHS patch that keeps the tableau shape, and with it any retained
///   simplex basis, intact.
/// * Retired IMPs keep their columns and row coefficients but are pinned
///   to zero by variable bounds — retiring or restoring an IMP later is a
///   pure bound patch. Since a pinned column contributes nothing to any
///   row, selections match the mask-filtered cold model (the surviving
///   columns appear in the same order, so the branch-and-bound
///   lexicographic tie-break agrees too).
pub(crate) fn build_model_delta(
    instance: &Instance,
    db: &ImpDb,
    problem: ProblemKind,
    gains: &RequiredGains,
    power_budget_mw: Option<u64>,
) -> Result<DeltaFormulation, CoreError> {
    let (model, map, gain_rows) =
        build_model_impl(instance, db, problem, gains, power_budget_mw, true)?;
    Ok(DeltaFormulation {
        model,
        map,
        gain_rows,
    })
}

/// The built ILP, its variable map, and the (path, gain-row index) table
/// the delta layer patches.
type BuiltModel = (Model, VarMap, Vec<(PathId, usize)>);

fn build_model_impl(
    instance: &Instance,
    db: &ImpDb,
    problem: ProblemKind,
    gains: &RequiredGains,
    power_budget_mw: Option<u64>,
    delta: bool,
) -> Result<BuiltModel, CoreError> {
    if db.is_empty() {
        return Err(CoreError::NoImps);
    }
    let mut model = Model::new(Sense::Minimize);

    // Row terms come from the unmasked IMP list in delta mode (retired
    // columns are pinned by bounds instead, below) and the masked one
    // otherwise.
    let imps_of = |sc| {
        if delta {
            db.for_scall_all(sc)
        } else {
            db.for_scall(sc)
        }
    };

    // Decision variables x_ij.
    let mut x: Vec<Option<VarId>> = Vec::with_capacity(db.len());
    for imp in db.imps() {
        let excluded = (problem == ProblemKind::Problem1
            && matches!(imp.parallel, ParallelChoice::SwScalls(_)))
            || (!delta && !db.is_active(imp.id));
        if excluded {
            x.push(None);
        } else {
            x.push(Some(model.add_binary(format!("x_{}", imp.id))));
        }
    }
    if delta {
        for imp in db.imps() {
            if !db.is_active(imp.id) {
                if let Some(v) = x[imp.id.index()] {
                    model.set_var_bounds(v, 0.0, 0.0).map_err(CoreError::Ilp)?;
                }
            }
        }
    }

    // Eq. 1: at most one IMP per s-call.
    for sc in &instance.scalls {
        let terms: Vec<(VarId, f64)> = imps_of(sc.id)
            .iter()
            .filter_map(|imp| x[imp.id.index()].map(|v| (v, 1.0)))
            .collect();
        if !terms.is_empty() {
            model
                .add_labeled_constraint(
                    terms,
                    Relation::Le,
                    1.0,
                    Some(format!("one_imp_{}", sc.id)),
                )
                .map_err(CoreError::Ilp)?;
        }
    }

    // Eq. 2: per-path required gain. Delta mode always emits the row (and
    // records its index) so the requirement stays patchable; the cold path
    // skips redundant zero-requirement rows.
    let mut gain_rows: Vec<(PathId, usize)> = Vec::new();
    for path in instance.effective_paths() {
        let required = gains.for_path(path.id);
        if !delta && required == Cycles::ZERO {
            continue;
        }
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for &sc in &path.scalls {
            if instance.scall(sc).is_none() {
                return Err(CoreError::BadPath {
                    path: path.id,
                    scall: sc,
                });
            }
            for imp in imps_of(sc) {
                if let Some(v) = x[imp.id.index()] {
                    terms.push((v, imp.gain.get() as f64));
                }
            }
        }
        let row = model.num_constraints();
        model
            .add_labeled_constraint(
                terms,
                Relation::Ge,
                required.get() as f64,
                Some(format!("gain_{}", path.id)),
            )
            .map_err(CoreError::Ilp)?;
        if delta {
            gain_rows.push((path.id, row));
        }
    }

    // Problem 1: s-calls to the same function are always implemented in the
    // same way — tie matching implementation shapes together. Always built
    // from the *masked* view: which ties exist depends on which IMPs are
    // live, which is why a mask-changing delta under Problem 1 forces a
    // cold rebuild (see `crate::delta`).
    if problem == ProblemKind::Problem1 {
        let mut by_name: BTreeMap<&str, Vec<&crate::SCall>> = BTreeMap::new();
        for sc in &instance.scalls {
            by_name.entry(sc.name.as_str()).or_default().push(sc);
        }
        for group in by_name.values().filter(|g| g.len() > 1) {
            let leader = group[0];
            for follower in &group[1..] {
                for limp in db.for_scall(leader.id) {
                    let Some(lv) = x[limp.id.index()] else {
                        continue;
                    };
                    // Find the follower's IMP with the same shape.
                    let matching = db.for_scall(follower.id).into_iter().find(|f| {
                        f.ips == limp.ips
                            && f.interface == limp.interface
                            && f.parallel == limp.parallel
                    });
                    if let Some(fimp) = matching {
                        if let Some(fv) = x[fimp.id.index()] {
                            model
                                .add_labeled_constraint(
                                    [(lv, 1.0), (fv, -1.0)],
                                    Relation::Eq,
                                    0.0,
                                    Some("same_way"),
                                )
                                .map_err(CoreError::Ilp)?;
                        }
                    } else {
                        // No matching shape for the follower: the leader
                        // cannot use this shape either.
                        model
                            .add_labeled_constraint(
                                [(lv, 1.0)],
                                Relation::Le,
                                0.0,
                                Some("same_way"),
                            )
                            .map_err(CoreError::Ilp)?;
                    }
                }
            }
        }
    }

    // Optional power budget: Σ p_ij · x_ij ≤ budget.
    if let Some(budget) = power_budget_mw {
        let terms: Vec<(VarId, f64)> = db
            .imps()
            .iter()
            .filter_map(|imp| x[imp.id.index()].map(|v| (v, imp.power_mw as f64)))
            .filter(|(_, p)| *p > 0.0)
            .collect();
        if !terms.is_empty() {
            model
                .add_labeled_constraint(terms, Relation::Le, budget as f64, Some("power"))
                .map_err(CoreError::Ilp)?;
        }
    }

    // Problem 2: SC-PC conflicts.
    if problem == ProblemKind::Problem2 {
        for pair in sc_pc_conflicts(db) {
            if let (Some(a), Some(b)) = (x[pair.a.index()], x[pair.b.index()]) {
                model
                    .add_labeled_constraint(
                        [(a, 1.0), (b, 1.0)],
                        Relation::Le,
                        1.0,
                        Some("sc_pc_conflict"),
                    )
                    .map_err(CoreError::Ilp)?;
            }
        }
    }

    // Fixed-charge indicators z_k for every IP used by an active IMP.
    let mut users: BTreeMap<IpId, Vec<VarId>> = BTreeMap::new();
    for imp in db.imps() {
        if let Some(v) = x[imp.id.index()] {
            for &ip in &imp.ips {
                users.entry(ip).or_default().push(v);
            }
        }
    }
    let mut z = BTreeMap::new();
    for (&ip, vars) in &users {
        let zv = model.add_binary(format!("z_{ip}"));
        fixed_charge::link_indicator(&mut model, zv, vars).map_err(CoreError::Ilp)?;
        z.insert(ip, zv);
    }

    // Objective: Σ z_k a_k + Σ x_ij c_ij, in area tenths. A tiny negative
    // gain term breaks area ties toward selections with more gain — the
    // paper's "SCs that can be implemented using the same IP are selected
    // as many as possible" (§5.1). The weight is scaled per instance so the
    // total tie-break stays below 0.4 area tenths (well under the area
    // granularity) while every per-variable coefficient stays orders of
    // magnitude above the simplex optimality tolerance. Computed over the
    // *unmasked* IMP list so retiring or restoring an IMP never changes the
    // objective coefficients — the patched delta model and a cold rebuild of
    // the same masked database must agree term for term.
    let max_total_gain: u64 = instance
        .scalls
        .iter()
        .map(|sc| {
            db.for_scall_all(sc.id)
                .iter()
                .map(|i| i.gain.get())
                .max()
                .unwrap_or(0)
        })
        .sum();
    let gain_tiebreak: f64 = 0.4 / (max_total_gain.max(1) as f64);
    let mut objective: Vec<(VarId, f64)> = Vec::new();
    for (&ip, &zv) in &z {
        let area = instance
            .library
            .block(ip)
            .map(|b| b.area().tenths())
            .unwrap_or(0);
        objective.push((zv, area as f64));
    }
    for imp in db.imps() {
        if let Some(v) = x[imp.id.index()] {
            objective.push((
                v,
                imp.interface_area.tenths() as f64 - gain_tiebreak * imp.gain.get() as f64,
            ));
        }
    }
    model.set_objective(objective);

    Ok((model, VarMap { x, z }, gain_rows))
}

/// Decodes which IMPs a solution selected.
pub(crate) fn decode(db: &ImpDb, map: &VarMap, solution: &partita_ilp::IlpSolution) -> Vec<ImpId> {
    db.imps()
        .iter()
        .filter(|imp| {
            map.x[imp.id.index()]
                .map(|v| solution.is_set(v))
                .unwrap_or(false)
        })
        .map(|imp| imp.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Imp, SCall};
    use partita_ilp::BranchBound;
    use partita_interface::{InterfaceKind, TransferJob};
    use partita_ip::IpFunction;
    use partita_mop::{AreaTenths, CallSiteId};

    fn instance_two_firs() -> (Instance, ImpDb) {
        let mut inst = Instance::new("t");
        let ip0 = inst.library.add(
            partita_ip::IpBlock::builder("fir")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(3))
                .build(),
        );
        let a = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            Cycles(100),
            TransferJob::new(4, 4),
        ));
        let b = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            Cycles(100),
            TransferJob::new(4, 4),
        ));
        inst.add_path(vec![a, b]);
        let db = ImpDb::from_imps(vec![
            Imp::new(
                a,
                vec![ip0],
                InterfaceKind::Type0,
                Cycles(50),
                AreaTenths::from_tenths(3),
                crate::ParallelChoice::None,
            ),
            Imp::new(
                b,
                vec![ip0],
                InterfaceKind::Type0,
                Cycles(50),
                AreaTenths::from_tenths(3),
                crate::ParallelChoice::None,
            ),
        ]);
        (inst, db)
    }

    #[test]
    fn ip_area_charged_once_for_shared_ip() {
        let (inst, db) = instance_two_firs();
        let (model, map) = build_model(
            &inst,
            &db,
            ProblemKind::Problem2,
            &RequiredGains::uniform(Cycles(100)),
            None,
        )
        .unwrap();
        let sol = BranchBound::new().solve(&model).unwrap();
        let chosen = decode(&db, &map, &sol);
        assert_eq!(chosen.len(), 2);
        // Objective: IP area 30 tenths once + 2 interfaces x 3 tenths.
        assert_eq!(sol.objective.round() as i64, 36);
    }

    #[test]
    fn infeasible_when_gain_unreachable() {
        let (inst, db) = instance_two_firs();
        let (model, _) = build_model(
            &inst,
            &db,
            ProblemKind::Problem2,
            &RequiredGains::uniform(Cycles(1_000_000)),
            None,
        )
        .unwrap();
        assert!(BranchBound::new().solve(&model).is_err());
    }

    #[test]
    fn problem1_excludes_sw_pc_imps() {
        let (inst, mut db) = instance_two_firs();
        db.add(Imp::new(
            CallSiteId(0),
            vec![partita_ip::IpId(0)],
            InterfaceKind::Type3,
            Cycles(90),
            AreaTenths::from_tenths(5),
            crate::ParallelChoice::SwScalls(vec![CallSiteId(1)]),
        ));
        let (_, map) = build_model(
            &inst,
            &db,
            ProblemKind::Problem1,
            &RequiredGains::uniform(Cycles(10)),
            None,
        )
        .unwrap();
        assert!(map.x[2].is_none());
        let (_, map2) = build_model(
            &inst,
            &db,
            ProblemKind::Problem2,
            &RequiredGains::uniform(Cycles(10)),
            None,
        )
        .unwrap();
        assert!(map2.x[2].is_some());
    }

    #[test]
    fn bad_path_is_reported() {
        let (mut inst, db) = instance_two_firs();
        inst.add_path(vec![CallSiteId(9)]);
        let err = build_model(
            &inst,
            &db,
            ProblemKind::Problem2,
            &RequiredGains::uniform(Cycles(10)),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadPath { .. }));
    }

    #[test]
    fn empty_db_rejected() {
        let inst = Instance::new("e");
        assert_eq!(
            build_model(
                &inst,
                &ImpDb::default(),
                ProblemKind::Problem2,
                &RequiredGains::uniform(Cycles(1)),
                None,
            )
            .unwrap_err(),
            CoreError::NoImps
        );
    }

    #[test]
    fn per_path_gains() {
        let g = RequiredGains::per_path(vec![
            (partita_mop::PathId(0), Cycles(10)),
            (partita_mop::PathId(1), Cycles(20)),
        ]);
        assert_eq!(g.for_path(partita_mop::PathId(1)), Cycles(20));
        assert_eq!(g.for_path(partita_mop::PathId(5)), Cycles::ZERO);
    }
}
