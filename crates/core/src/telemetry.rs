//! Unified structured telemetry: typed events, pluggable sinks, phase spans.
//!
//! Paper reproductions live and die by *comparable* measurements. PRs 1–4
//! grew three disjoint ad-hoc JSON surfaces ([`SolveTrace::to_json`],
//! [`crate::SweepTrace`], [`crate::AuditReport::to_json`]); this module
//! replaces the bespoke encoders with one **versioned event schema**: every
//! line the pipeline emits is a typed [`Event`] serialized as a single JSON
//! object tagged `{"schema":1,"event":"<kind>", ...}`. The full field-level
//! schema is documented in `docs/TELEMETRY.md`, which is kept honest by a
//! test diffing the doc's event list against [`EventKind::ALL`].
//!
//! # Architecture
//!
//! * [`Event`] — the closed set of things the pipeline can report: solve
//!   lifecycle ([`Event::SolveStarted`] → [`Event::PhaseFinished`] →
//!   [`Event::WorkerFinished`] → [`Event::SolveFinished`]), sweep-session
//!   activity ([`Event::CacheLookup`], [`Event::ChainDecision`],
//!   [`Event::SweepPoint`], [`Event::BatchStarted`], …), audit results
//!   ([`Event::AuditFinished`]) and free-form [`Event::Counter`] /
//!   [`Event::Gauge`] instruments.
//! * [`TelemetrySink`] — where events go. [`NullSink`] drops them (and
//!   reports `enabled() == false`, so producers skip building events
//!   entirely — the zero-cost-when-disabled contract), [`JsonLinesSink`]
//!   writes one JSON line per event through a mutex (each line is a single
//!   `write_all`, so concurrent workers can never tear a line), and
//!   [`RecordingSink`] buffers typed events in memory for tests and the
//!   benchsuite.
//! * [`SpanTimer`] — a monotonic phase timer ([`std::time::Instant`]) that
//!   emits [`Event::PhaseFinished`] when finished.
//! * [`global`] — the process-wide default sink, configured once from the
//!   `PARTITA_TRACE` / `PARTITA_TRACE_PATH` environment variables;
//!   [`crate::Solver`], [`crate::SweepSession`] and
//!   [`crate::SelectionAuditor`] use it unless given an explicit sink.
//! * [`json`] — a dependency-free JSON parser used by the benchsuite's
//!   `--compare` mode and by the schema-validation tests (the workspace is
//!   offline: no serde).
//!
//! # Determinism and [`Redaction`]
//!
//! Serial solves are bit-deterministic, so two single-threaded runs of the
//! same workload produce **byte-identical** event streams once wall-clock
//! fields are redacted ([`Redaction::Timing`]). At > 1 thread the *schedule*
//! is nondeterministic — per-worker node splits and total node counts vary —
//! but the event *set* (kinds, worker indices, cache decisions, selections)
//! does not; [`Redaction::Effort`] additionally zeroes the search-effort
//! counters so repeat parallel runs compare set-identical. Both guarantees
//! are locked by `tests/telemetry_schema.rs`.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use partita_core::telemetry::{EventKind, RecordingSink};
//! use partita_core::{Instance, SCall, Solver, SolveOptions, RequiredGains};
//! use partita_ip::{IpBlock, IpFunction};
//! use partita_interface::TransferJob;
//! use partita_mop::{AreaTenths, Cycles};
//!
//! # fn main() -> Result<(), partita_core::CoreError> {
//! let mut instance = Instance::new("demo");
//! instance.library.add(
//!     IpBlock::builder("fir16").function(IpFunction::Fir)
//!         .rates(4, 4).latency(8)
//!         .area(AreaTenths::from_units(3)).build(),
//! );
//! let sc = instance.add_scall(
//!     SCall::new("fir", IpFunction::Fir, Cycles(4000), TransferJob::new(160, 160)),
//! );
//! instance.add_path(vec![sc]);
//! let sink = Arc::new(RecordingSink::new());
//! Solver::new(&instance)
//!     .with_sink(sink.clone())
//!     .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(1000))))?;
//! let events = sink.events();
//! assert_eq!(events.first().map(|e| e.kind()), Some(EventKind::SolveStarted));
//! assert_eq!(events.last().map(|e| e.kind()), Some(EventKind::SolveFinished));
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;
use std::io::Write;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::engine::SolveTrace;
use crate::solver::ProblemKind;
use crate::Backend;

/// Version of the event schema. Every serialized event carries it as its
/// first field (`"schema":1`); bump it only with a matching update to
/// `docs/TELEMETRY.md` and the downstream scrapers.
pub const SCHEMA_VERSION: u32 = 1;

/// Escapes a string for embedding in a hand-rolled JSON document: quotes,
/// backslashes and control characters, per RFC 8259.
#[must_use]
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Which session cache a [`Event::CacheLookup`] probed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// The memoized-[`crate::Selection`] cache.
    Solve,
    /// The formulated-model cache.
    Model,
    /// The solve daemon's process-wide sharded canonical cache
    /// ([`crate::cache::ShardedLru`]), shared across tenants.
    Service,
}

impl CacheKind {
    /// The snake_case name serialized into the `cache` field.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CacheKind::Solve => "solve",
            CacheKind::Model => "model",
            CacheKind::Service => "service",
        }
    }
}

/// A named phase of the solve pipeline, timed by a [`SpanTimer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// [`crate::ImpDb::generate`] (zero-length when the db was prebuilt).
    ImpGeneration,
    /// Building the 0/1 ILP model.
    Formulation,
    /// The backend search (including any fallback).
    Solve,
    /// Decoding the model solution into a [`crate::Selection`].
    Decode,
}

impl Phase {
    /// The snake_case name serialized into the `phase` field.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::ImpGeneration => "imp_generation",
            Phase::Formulation => "formulation",
            Phase::Solve => "solve",
            Phase::Decode => "decode",
        }
    }
}

/// How much run-specific noise to strip when serializing an [`Event`].
///
/// Used by the determinism tests and the benchsuite: wall-clock fields never
/// reproduce, and at > 1 thread neither do search-effort counters (the
/// work-stealing schedule decides how many nodes each worker touches before
/// the shared incumbent closes the tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Redaction {
    /// Serialize everything as recorded.
    #[default]
    None,
    /// Zero every wall-clock field (`*_us`). Two serial runs of the same
    /// workload then serialize byte-identically.
    Timing,
    /// Additionally zero the search-effort counters (nodes, prunes, steals,
    /// incumbent updates, simplex pivots — totals and per-worker entries).
    /// Repeat parallel runs then serialize set-identically.
    Effort,
}

impl Redaction {
    fn hide_timing(self) -> bool {
        self >= Redaction::Timing
    }

    fn hide_effort(self) -> bool {
        self >= Redaction::Effort
    }

    fn us(self, d: Duration) -> u128 {
        if self.hide_timing() {
            0
        } else {
            d.as_micros()
        }
    }

    fn effort(self, n: usize) -> usize {
        if self.hide_effort() {
            0
        } else {
            n
        }
    }

    fn effort64(self, n: u64) -> u64 {
        if self.hide_effort() {
            0
        } else {
            n
        }
    }
}

/// The kind tag of an [`Event`], without its payload.
///
/// [`EventKind::ALL`] enumerates every kind the pipeline can emit;
/// `docs/TELEMETRY.md` must document each one (a test diffs the doc against
/// this list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A [`crate::Solver::solve`] call entered the pipeline.
    SolveStarted,
    /// One pipeline [`Phase`] completed.
    PhaseFinished,
    /// One branch-and-bound worker drained (serial solves report worker 0).
    WorkerFinished,
    /// A solve returned; carries the full [`SolveTrace`].
    SolveFinished,
    /// A [`crate::SelectionAuditor::audit`] pass completed.
    AuditFinished,
    /// A [`crate::SweepSession`] cache was probed.
    CacheLookup,
    /// The sweep loop decided whether to chain the previous optimum.
    ChainDecision,
    /// One sweep point (or batch job) was answered.
    SweepPoint,
    /// Aggregate counters of a recorded sweep (rendered retrospectively).
    SweepSummary,
    /// A cold-vs-chained sweep comparison (rendered retrospectively).
    SweepCompare,
    /// A [`crate::SweepSession::solve_batch`] fan-out began.
    BatchStarted,
    /// A [`crate::delta::DeltaSession`] applied an [`crate::InstanceDelta`]
    /// to the built model (in place, or by forcing a cold rebuild).
    ModelPatched,
    /// A delta re-solve reported whether the retained root-LP basis was
    /// installed and dual-repaired or fell back to the cold two-phase path.
    BasisReused,
    /// A free-form monotonic counter sample.
    Counter,
    /// A free-form instantaneous gauge sample.
    Gauge,
    /// One racer of a portfolio solve returned (win or lose).
    BackendFinished,
    /// A portfolio race was decided.
    RaceWon,
}

impl EventKind {
    /// Every event kind, in the order they are documented.
    pub const ALL: [EventKind; 17] = [
        EventKind::SolveStarted,
        EventKind::PhaseFinished,
        EventKind::WorkerFinished,
        EventKind::SolveFinished,
        EventKind::AuditFinished,
        EventKind::CacheLookup,
        EventKind::ChainDecision,
        EventKind::SweepPoint,
        EventKind::SweepSummary,
        EventKind::SweepCompare,
        EventKind::BatchStarted,
        EventKind::ModelPatched,
        EventKind::BasisReused,
        EventKind::Counter,
        EventKind::Gauge,
        EventKind::BackendFinished,
        EventKind::RaceWon,
    ];

    /// The snake_case name serialized into the `event` field.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SolveStarted => "solve_started",
            EventKind::PhaseFinished => "phase_finished",
            EventKind::WorkerFinished => "worker_finished",
            EventKind::SolveFinished => "solve_finished",
            EventKind::AuditFinished => "audit_finished",
            EventKind::CacheLookup => "cache_lookup",
            EventKind::ChainDecision => "chain_decision",
            EventKind::SweepPoint => "sweep_point",
            EventKind::SweepSummary => "sweep_summary",
            EventKind::SweepCompare => "sweep_compare",
            EventKind::BatchStarted => "batch_started",
            EventKind::ModelPatched => "model_patched",
            EventKind::BasisReused => "basis_reused",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::BackendFinished => "backend_finished",
            EventKind::RaceWon => "race_won",
        }
    }
}

/// One structured telemetry event.
///
/// Producers build events only when the receiving sink is
/// [`TelemetrySink::enabled`]; serialization happens in the sink (or in the
/// retrospective renderers), never on the hot path of a disabled run.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A solve entered the pipeline.
    SolveStarted {
        /// Display name of the instance being solved.
        instance: String,
        /// Which formulation ([`ProblemKind`]).
        problem: ProblemKind,
        /// The backend the options requested (the accepted solution's
        /// backend — after any fallback — is in [`Event::SolveFinished`]).
        backend: Backend,
        /// Requested branch-and-bound worker threads.
        threads: usize,
    },
    /// One pipeline phase completed.
    PhaseFinished {
        /// Which phase.
        phase: Phase,
        /// Monotonic wall time of the phase.
        wall: Duration,
    },
    /// One branch-and-bound worker drained.
    WorkerFinished {
        /// Worker index (0-based; root-node work is attributed to worker 0).
        worker: usize,
        /// Nodes whose LP relaxation this worker solved.
        nodes_explored: usize,
        /// Nodes this worker pruned by bound.
        nodes_pruned: usize,
        /// Nodes this worker took from the shared pool instead of its local
        /// dive stack (the work-stealing traffic).
        steals: usize,
        /// Simplex pivots across this worker's node LPs.
        simplex_iterations: usize,
    },
    /// A solve returned.
    SolveFinished {
        /// The complete end-to-end trace of the call.
        trace: SolveTrace,
    },
    /// An audit pass completed.
    AuditFinished {
        /// Whether the audit found no violations.
        clean: bool,
        /// Number of violations found.
        violations: usize,
        /// Independent checks executed.
        checks_run: usize,
        /// Chosen IMPs audited.
        imps_audited: usize,
        /// Execution paths audited.
        paths_audited: usize,
        /// Whether per-path gains were re-derived from the timing model.
        gain_rederived: bool,
    },
    /// A sweep-session cache was probed.
    CacheLookup {
        /// Which cache.
        cache: CacheKind,
        /// Whether the probe hit.
        hit: bool,
        /// FNV-1a 64 digest of the canonical cache key.
        digest: u64,
    },
    /// The sweep loop decided whether to chain the previous (higher-RG)
    /// optimum into the next point as a warm-start incumbent. Emitted once
    /// per point that *has* a predecessor; `accepted == false` means the
    /// independent feasibility check rejected the carry-over.
    ChainDecision {
        /// The next point's uniform required gain, when uniform.
        rg: Option<u64>,
        /// Whether the previous optimum was accepted as a seed.
        accepted: bool,
    },
    /// One sweep point (or batch job) was answered.
    SweepPoint {
        /// Sweep label (`None` for live emission; the retrospective
        /// [`crate::SweepTrace::json_lines`] renderer fills it in).
        sweep: Option<String>,
        /// Index within the labelled sweep (`None` for live emission).
        point: Option<usize>,
        /// FNV-1a 64 digest of the canonical solve key.
        digest: u64,
        /// The point's uniform required gain, when uniform.
        rg: Option<u64>,
        /// Whether the solve cache answered without running a solver.
        cache_hit: bool,
        /// Whether a chained warm-start incumbent was injected.
        chained: bool,
        /// Branch-and-bound nodes explored (0 on a cache hit).
        nodes: usize,
        /// Wall time of the point, cache lookups included.
        wall: Duration,
    },
    /// Aggregate counters of a recorded sweep.
    SweepSummary {
        /// Sweep label.
        sweep: String,
        /// Points recorded.
        points: usize,
        /// Requests answered from the solve cache.
        cache_hits: u64,
        /// Requests that ran a solver.
        cache_misses: u64,
        /// Solver runs that reused a cached model.
        model_hits: u64,
        /// Solver runs that built their model.
        model_misses: u64,
        /// Points seeded with the previous point's verified optimum.
        chained_accepts: u64,
        /// Points whose carry-over candidate failed the feasibility check.
        chained_rejects: u64,
        /// Total nodes across all points.
        nodes: u64,
        /// Total wall time across all points.
        wall: Duration,
    },
    /// A cold-vs-chained sweep comparison.
    SweepCompare {
        /// Sweep label.
        sweep: String,
        /// Total nodes of the cold (unchained) sweep.
        cold_nodes: u64,
        /// Total nodes of the chained sweep.
        chained_nodes: u64,
        /// `cold_nodes - chained_nodes` (negative if chaining cost nodes).
        nodes_saved: i64,
        /// Chained points seeded from a predecessor.
        chained_accepts: u64,
        /// Total wall time of the cold sweep.
        cold_wall: Duration,
        /// Total wall time of the chained sweep.
        chained_wall: Duration,
    },
    /// A batch fan-out began.
    BatchStarted {
        /// Jobs submitted.
        jobs: usize,
        /// Distinct solves after cache probes and in-batch dedup.
        unique: usize,
        /// Duplicate jobs answered by copying a twin's result.
        followers: usize,
        /// Worker threads fanning out the unique solves.
        pool_threads: usize,
    },
    /// A delta op was applied to the built model.
    ModelPatched {
        /// Display name of the instance being edited.
        instance: String,
        /// The delta op's snake_case name (`set_rg`, `add_ip`, `remove_ip`,
        /// `set_interface_kind`).
        op: String,
        /// `patch` when the built model was edited in place, `rebuild`
        /// when the op forced a cold build+formulate pass.
        mode: String,
        /// Constraint rows whose RHS the patch rewrote.
        rows_touched: usize,
        /// Variable columns pinned to zero (retired) or released.
        cols_retired: usize,
    },
    /// A delta re-solve's basis-reuse outcome.
    BasisReused {
        /// Whether the retained basis was installed and dual-repaired
        /// (`false` means the cold two-phase path ran).
        accepted: bool,
        /// Rows of the basis offered to the solve (0 when none was held).
        rows: usize,
    },
    /// A free-form monotonic counter sample.
    Counter {
        /// Instrument name.
        name: String,
        /// Sampled value.
        value: u64,
    },
    /// A free-form instantaneous gauge sample (non-finite values serialize
    /// as `null`).
    Gauge {
        /// Instrument name.
        name: String,
        /// Sampled value.
        value: f64,
    },
    /// One racer of a portfolio solve returned. Emitted once per configured
    /// racer, in racer-configuration order, after every racer has joined —
    /// so the event stream is deterministic however the race interleaved.
    BackendFinished {
        /// Which backend raced.
        backend: Backend,
        /// How the racer concluded: `optimal` (audit-clean proven optimum),
        /// `infeasible` (proven empty), `incumbent` (feasible but not
        /// proven — including racers cancelled mid-search), `heuristic`,
        /// `exhausted` (budget gone, nothing to show), or `error`.
        outcome: String,
        /// Nodes the racer explored before stopping.
        nodes_explored: usize,
        /// Wall time from race start to this racer's return.
        wall: Duration,
    },
    /// A portfolio race was decided.
    RaceWon {
        /// The racer whose result was accepted (`None` when the race ended
        /// with no conclusive winner and the best incumbent was returned).
        winner: Option<Backend>,
        /// Racers configured.
        racers: usize,
        /// Wall time of the whole race.
        wall: Duration,
    },
}

/// Incremental writer for one serialized event. Field order is the schema's
/// documented order; every `push_*` call appends `,"key":value`.
struct EventWriter {
    buf: String,
}

impl EventWriter {
    fn new(kind: EventKind) -> EventWriter {
        EventWriter {
            buf: format!(
                "{{\"schema\":{SCHEMA_VERSION},\"event\":\"{}\"",
                kind.name()
            ),
        }
    }

    fn raw(&mut self, key: &str, value: impl std::fmt::Display) {
        let _ = write!(self.buf, ",\"{key}\":{value}");
    }

    fn string(&mut self, key: &str, value: &str) {
        let _ = write!(self.buf, ",\"{key}\":\"{}\"", json_escape(value));
    }

    fn opt_u64(&mut self, key: &str, value: Option<u64>) {
        match value {
            Some(v) => self.raw(key, v),
            None => self.raw(key, "null"),
        }
    }

    fn opt_str(&mut self, key: &str, value: Option<&str>) {
        match value {
            Some(v) => self.string(key, v),
            None => self.raw(key, "null"),
        }
    }

    fn usize_array(&mut self, key: &str, values: impl Iterator<Item = usize>) {
        let rendered: Vec<String> = values.map(|v| v.to_string()).collect();
        let _ = write!(self.buf, ",\"{key}\":[{}]", rendered.join(","));
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Event {
    /// The kind tag of this event.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            Event::SolveStarted { .. } => EventKind::SolveStarted,
            Event::PhaseFinished { .. } => EventKind::PhaseFinished,
            Event::WorkerFinished { .. } => EventKind::WorkerFinished,
            Event::SolveFinished { .. } => EventKind::SolveFinished,
            Event::AuditFinished { .. } => EventKind::AuditFinished,
            Event::CacheLookup { .. } => EventKind::CacheLookup,
            Event::ChainDecision { .. } => EventKind::ChainDecision,
            Event::SweepPoint { .. } => EventKind::SweepPoint,
            Event::SweepSummary { .. } => EventKind::SweepSummary,
            Event::SweepCompare { .. } => EventKind::SweepCompare,
            Event::BatchStarted { .. } => EventKind::BatchStarted,
            Event::ModelPatched { .. } => EventKind::ModelPatched,
            Event::BasisReused { .. } => EventKind::BasisReused,
            Event::Counter { .. } => EventKind::Counter,
            Event::Gauge { .. } => EventKind::Gauge,
            Event::BackendFinished { .. } => EventKind::BackendFinished,
            Event::RaceWon { .. } => EventKind::RaceWon,
        }
    }

    /// Serializes the event as one JSON object with no redaction.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_redacted(Redaction::None)
    }

    /// Serializes the event as one JSON object, stripping run-specific noise
    /// per `redaction` (see [`Redaction`]). Field order is fixed per kind —
    /// the documented schema order — regardless of redaction.
    #[must_use]
    pub fn to_json_redacted(&self, redaction: Redaction) -> String {
        let r = redaction;
        let mut w = EventWriter::new(self.kind());
        match self {
            Event::SolveStarted {
                instance,
                problem,
                backend,
                threads,
            } => {
                w.string("instance", instance);
                w.string("problem", problem.name());
                w.string("backend", &backend.to_string());
                w.raw("threads", threads);
            }
            Event::PhaseFinished { phase, wall } => {
                w.string("phase", phase.name());
                w.raw("wall_us", r.us(*wall));
            }
            Event::WorkerFinished {
                worker,
                nodes_explored,
                nodes_pruned,
                steals,
                simplex_iterations,
            } => {
                w.raw("worker", worker);
                w.raw("nodes_explored", r.effort(*nodes_explored));
                w.raw("nodes_pruned", r.effort(*nodes_pruned));
                w.raw("steals", r.effort(*steals));
                w.raw("simplex_iterations", r.effort(*simplex_iterations));
            }
            Event::SolveFinished { trace } => {
                w.string("backend", &trace.backend.to_string());
                w.string("status", &trace.status.to_string());
                w.raw("num_vars", trace.num_vars);
                w.raw("num_constraints", trace.num_constraints);
                w.raw("num_imps", trace.num_imps);
                w.raw("nodes_explored", r.effort(trace.nodes_explored));
                w.raw("nodes_pruned", r.effort(trace.nodes_pruned));
                w.raw("incumbent_updates", r.effort(trace.incumbent_updates));
                w.raw("simplex_iterations", r.effort(trace.simplex_iterations));
                w.raw("phase1_pivots", r.effort(trace.phase1_pivots));
                w.raw("phase2_pivots", r.effort(trace.phase2_pivots));
                w.raw("dual_pivots", r.effort(trace.dual_pivots));
                w.raw("lex_pivots", r.effort(trace.lex_pivots));
                w.raw("tableau_builds", r.effort(trace.tableau_builds));
                w.raw("scratch_reuses", r.effort(trace.scratch_reuses));
                w.raw("bland_activations", r.effort(trace.bland_activations));
                w.raw("warm_start_accepted", trace.warm_start_accepted);
                w.raw("vars_fixed", trace.vars_fixed);
                w.raw("basis_reused", trace.basis_reused);
                w.raw("threads", trace.threads);
                w.usize_array(
                    "worker_nodes",
                    trace.worker_nodes.iter().map(|&n| r.effort(n)),
                );
                w.usize_array(
                    "worker_steals",
                    trace.worker_steals.iter().map(|&n| r.effort(n)),
                );
                w.raw("imp_generation_us", r.us(trace.imp_generation));
                w.raw("formulation_us", r.us(trace.formulation));
                w.raw("solve_us", r.us(trace.solve));
                w.raw("decode_us", r.us(trace.decode));
                w.raw("total_us", r.us(trace.total()));
            }
            Event::AuditFinished {
                clean,
                violations,
                checks_run,
                imps_audited,
                paths_audited,
                gain_rederived,
            } => {
                w.raw("clean", clean);
                w.raw("violations", violations);
                w.raw("checks_run", checks_run);
                w.raw("imps_audited", imps_audited);
                w.raw("paths_audited", paths_audited);
                w.raw("gain_rederived", gain_rederived);
            }
            Event::CacheLookup { cache, hit, digest } => {
                w.string("cache", cache.name());
                w.raw("hit", hit);
                w.string("digest", &format!("{digest:016x}"));
            }
            Event::ChainDecision { rg, accepted } => {
                w.opt_u64("rg", *rg);
                w.raw("accepted", accepted);
            }
            Event::SweepPoint {
                sweep,
                point,
                digest,
                rg,
                cache_hit,
                chained,
                nodes,
                wall,
            } => {
                w.opt_str("sweep", sweep.as_deref());
                w.opt_u64("point", point.map(|p| p as u64));
                w.string("digest", &format!("{digest:016x}"));
                w.opt_u64("rg", *rg);
                w.raw("cache_hit", cache_hit);
                w.raw("chained", chained);
                w.raw("nodes", r.effort(*nodes));
                w.raw("wall_us", r.us(*wall));
            }
            Event::SweepSummary {
                sweep,
                points,
                cache_hits,
                cache_misses,
                model_hits,
                model_misses,
                chained_accepts,
                chained_rejects,
                nodes,
                wall,
            } => {
                w.string("sweep", sweep);
                w.raw("points", points);
                w.raw("cache_hits", cache_hits);
                w.raw("cache_misses", cache_misses);
                w.raw("model_hits", model_hits);
                w.raw("model_misses", model_misses);
                w.raw("chained_accepts", chained_accepts);
                w.raw("chained_rejects", chained_rejects);
                w.raw("nodes", r.effort64(*nodes));
                w.raw("wall_us", r.us(*wall));
            }
            Event::SweepCompare {
                sweep,
                cold_nodes,
                chained_nodes,
                nodes_saved,
                chained_accepts,
                cold_wall,
                chained_wall,
            } => {
                w.string("sweep", sweep);
                w.raw("cold_nodes", r.effort64(*cold_nodes));
                w.raw("chained_nodes", r.effort64(*chained_nodes));
                w.raw(
                    "nodes_saved",
                    if r.hide_effort() { 0 } else { *nodes_saved },
                );
                w.raw("chained_accepts", chained_accepts);
                w.raw("cold_wall_us", r.us(*cold_wall));
                w.raw("chained_wall_us", r.us(*chained_wall));
            }
            Event::BatchStarted {
                jobs,
                unique,
                followers,
                pool_threads,
            } => {
                w.raw("jobs", jobs);
                w.raw("unique", unique);
                w.raw("followers", followers);
                w.raw("pool_threads", pool_threads);
            }
            Event::ModelPatched {
                instance,
                op,
                mode,
                rows_touched,
                cols_retired,
            } => {
                w.string("instance", instance);
                w.string("op", op);
                w.string("mode", mode);
                w.raw("rows_touched", rows_touched);
                w.raw("cols_retired", cols_retired);
            }
            Event::BasisReused { accepted, rows } => {
                w.raw("accepted", accepted);
                w.raw("rows", rows);
            }
            Event::Counter { name, value } => {
                w.string("name", name);
                w.raw("value", value);
            }
            Event::Gauge { name, value } => {
                w.string("name", name);
                if value.is_finite() {
                    w.raw("value", value);
                } else {
                    w.raw("value", "null");
                }
            }
            Event::BackendFinished {
                backend,
                outcome,
                nodes_explored,
                wall,
            } => {
                w.string("backend", backend.name());
                w.string("outcome", outcome);
                w.raw("nodes_explored", r.effort(*nodes_explored));
                w.raw("wall_us", r.us(*wall));
            }
            Event::RaceWon {
                winner,
                racers,
                wall,
            } => {
                w.opt_str("winner", winner.map(Backend::name));
                w.raw("racers", racers);
                w.raw("wall_us", r.us(*wall));
            }
        }
        w.finish()
    }
}

/// Where telemetry events go.
///
/// Implementations must be safe to share across the branch-and-bound and
/// batch worker pools (`Send + Sync`); [`TelemetrySink::emit`] may be called
/// concurrently. Producers check [`TelemetrySink::enabled`] before building
/// an event, so a disabled sink costs one virtual call per site and no
/// allocation.
pub trait TelemetrySink: Send + Sync {
    /// Receives one event.
    fn emit(&self, event: &Event);

    /// Whether producers should bother building events at all. The default
    /// is `true`; [`NullSink`] returns `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The disabled sink: drops everything and reports [`TelemetrySink::enabled`]
/// `== false`, so producers skip event construction entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn emit(&self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Serializes each event as one JSON line into a [`Write`] target.
///
/// The writer is mutex-guarded and every line (newline included) is a single
/// `write_all`, so events from concurrent workers interleave only at line
/// granularity — a stream can never contain a torn line. Write errors are
/// deliberately swallowed: telemetry must never fail a solve.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }

    /// Unwraps the sink, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<W: Write + Send> TelemetrySink for JsonLinesSink<W> {
    fn emit(&self, event: &Event) {
        let mut line = event.to_json();
        line.push('\n');
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = writer.write_all(line.as_bytes());
    }
}

/// Buffers typed events in memory — the sink the tests and the benchsuite
/// use to assert on streams without parsing.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// An empty recording sink.
    #[must_use]
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// A snapshot of the recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.lock().clone()
    }

    /// Drains and returns the recorded events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.lock())
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Serializes every recorded event under `redaction`, one JSON line per
    /// event, in emission order.
    #[must_use]
    pub fn lines(&self, redaction: Redaction) -> Vec<String> {
        self.lock()
            .iter()
            .map(|e| e.to_json_redacted(redaction))
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl TelemetrySink for RecordingSink {
    fn emit(&self, event: &Event) {
        self.lock().push(event.clone());
    }
}

/// The process-wide default sink, configured once from the environment:
///
/// * `PARTITA_TRACE` — `stderr` (or `1`/`true`/`on`) streams JSON lines to
///   stderr; `stdout` to stdout; `file` to `PARTITA_TRACE_PATH` (default
///   `partita-trace.jsonl`); unset/`0`/`false`/`off` disables tracing.
/// * `PARTITA_TRACE_PATH` — target path; setting it alone implies `file`.
///
/// An unopenable trace file degrades to the [`NullSink`] — telemetry must
/// never fail a solve. Like `PARTITA_THREADS`/`PARTITA_AUDIT`, the variables
/// are read once; later changes do not take effect in-process.
#[must_use]
pub fn global() -> &'static dyn TelemetrySink {
    static SINK: OnceLock<Box<dyn TelemetrySink>> = OnceLock::new();
    SINK.get_or_init(|| {
        let mode = std::env::var("PARTITA_TRACE").unwrap_or_default();
        let mode = mode.trim().to_ascii_lowercase();
        let path = std::env::var("PARTITA_TRACE_PATH").ok();
        let off = matches!(mode.as_str(), "" | "0" | "false" | "off");
        match (off, mode.as_str(), &path) {
            (true, _, None) => Box::new(NullSink) as Box<dyn TelemetrySink>,
            (_, "stdout", _) => Box::new(JsonLinesSink::new(std::io::stdout())),
            (_, "stderr" | "1" | "true" | "on", _) => {
                Box::new(JsonLinesSink::new(std::io::stderr()))
            }
            // `file` mode, or a bare PARTITA_TRACE_PATH.
            _ => {
                let target = path.as_deref().unwrap_or("partita-trace.jsonl");
                match std::fs::File::create(target) {
                    Ok(f) => Box::new(JsonLinesSink::new(f)),
                    Err(_) => Box::new(NullSink),
                }
            }
        }
    })
    .as_ref()
}

/// A monotonic phase timer: started on a [`Phase`], emits
/// [`Event::PhaseFinished`] (when the sink is enabled) and returns the
/// elapsed wall time on [`SpanTimer::finish`].
#[derive(Debug)]
pub struct SpanTimer {
    phase: Phase,
    started: Instant,
}

impl SpanTimer {
    /// Starts timing `phase` now.
    #[must_use]
    pub fn start(phase: Phase) -> SpanTimer {
        SpanTimer {
            phase,
            started: Instant::now(),
        }
    }

    /// Stops the timer, emits the phase event through `sink` and returns the
    /// elapsed wall time.
    pub fn finish(self, sink: &dyn TelemetrySink) -> Duration {
        let wall = self.started.elapsed();
        if sink.enabled() {
            sink.emit(&Event::PhaseFinished {
                phase: self.phase,
                wall,
            });
        }
        wall
    }
}

/// Emits a [`Event::Counter`] sample through `sink` (when enabled).
pub fn counter(sink: &dyn TelemetrySink, name: &str, value: u64) {
    if sink.enabled() {
        sink.emit(&Event::Counter {
            name: name.to_string(),
            value,
        });
    }
}

/// Emits a [`Event::Gauge`] sample through `sink` (when enabled).
pub fn gauge(sink: &dyn TelemetrySink, name: &str, value: f64) {
    if sink.enabled() {
        sink.emit(&Event::Gauge {
            name: name.to_string(),
            value,
        });
    }
}

/// Resolves an optional per-object sink against the [`global`] default.
pub(crate) fn resolve(sink: Option<&Arc<dyn TelemetrySink>>) -> &dyn TelemetrySink {
    match sink {
        Some(s) => s.as_ref(),
        None => global(),
    }
}

pub mod json {
    //! A minimal, dependency-free JSON parser for telemetry streams and
    //! `BENCH_*.json` reports.
    //!
    //! The workspace is offline (no serde), but the benchsuite's `--compare`
    //! mode and the schema-validation tests need to *read* the JSON the
    //! telemetry layer writes. This parser covers RFC 8259 with two
    //! deliberate simplifications: numbers parse as `f64` (every counter the
    //! pipeline emits fits exactly in an `f64` mantissa) and object keys
    //! keep their **document order** (so tests can assert stable key order).

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum JsonValue {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (parsed as `f64`).
        Number(f64),
        /// A string, unescaped.
        String(String),
        /// An array.
        Array(Vec<JsonValue>),
        /// An object; entries keep document order (duplicate keys kept).
        Object(Vec<(String, JsonValue)>),
    }

    /// A parse failure: byte offset and a static description.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct JsonError {
        /// Byte offset of the failure in the input.
        pub offset: usize,
        /// What went wrong.
        pub message: &'static str,
    }

    impl std::fmt::Display for JsonError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "json parse error at byte {}: {}",
                self.offset, self.message
            )
        }
    }

    impl std::error::Error for JsonError {}

    impl JsonValue {
        /// Parses a complete JSON document (trailing whitespace allowed,
        /// trailing garbage rejected).
        ///
        /// # Errors
        ///
        /// [`JsonError`] with the offset of the first offending byte.
        pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
            let mut p = Parser {
                bytes: input.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            let value = p.value()?;
            p.skip_ws();
            if p.pos != p.bytes.len() {
                return Err(p.err("trailing garbage"));
            }
            Ok(value)
        }

        /// Object field lookup (first match; `None` on non-objects).
        #[must_use]
        pub fn get(&self, key: &str) -> Option<&JsonValue> {
            match self {
                JsonValue::Object(entries) => {
                    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                }
                _ => None,
            }
        }

        /// The object's keys in document order (`None` on non-objects).
        #[must_use]
        pub fn keys(&self) -> Option<Vec<&str>> {
            match self {
                JsonValue::Object(entries) => {
                    Some(entries.iter().map(|(k, _)| k.as_str()).collect())
                }
                _ => None,
            }
        }

        /// The value as an `f64`, when it is a number.
        #[must_use]
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                JsonValue::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a non-negative integer, when it is a whole number.
        #[must_use]
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                JsonValue::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        /// The value as a bool, when it is one.
        #[must_use]
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                JsonValue::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The value as a string slice, when it is a string.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                JsonValue::String(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array slice, when it is an array.
        #[must_use]
        pub fn as_array(&self) -> Option<&[JsonValue]> {
            match self {
                JsonValue::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The value's object entries in document order, when it is one.
        #[must_use]
        pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
            match self {
                JsonValue::Object(entries) => Some(entries),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn err(&self, message: &'static str) -> JsonError {
            JsonError {
                offset: self.pos,
                message,
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(message))
            }
        }

        fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(value)
            } else {
                Err(self.err("invalid literal"))
            }
        }

        fn value(&mut self) -> Result<JsonValue, JsonError> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(JsonValue::String(self.string()?)),
                Some(b't') => self.literal("true", JsonValue::Bool(true)),
                Some(b'f') => self.literal("false", JsonValue::Bool(false)),
                Some(b'n') => self.literal("null", JsonValue::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(self.err("expected a value")),
            }
        }

        fn object(&mut self) -> Result<JsonValue, JsonError> {
            self.expect(b'{', "expected '{'")?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(JsonValue::Object(entries));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':', "expected ':'")?;
                self.skip_ws();
                let value = self.value()?;
                entries.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(JsonValue::Object(entries));
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }

        fn array(&mut self) -> Result<JsonValue, JsonError> {
            self.expect(b'[', "expected '['")?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(self.err("expected ',' or ']'")),
                }
            }
        }

        fn string(&mut self) -> Result<String, JsonError> {
            self.expect(b'"', "expected '\"'")?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                self.pos += 1;
                                let cp = self.hex4()?;
                                // Combine a surrogate pair when one follows;
                                // a lone surrogate degrades to replacement.
                                let c = if (0xD800..0xDC00).contains(&cp) {
                                    if self.bytes[self.pos..].starts_with(b"\\u") {
                                        self.pos += 2;
                                        let lo = self.hex4()?;
                                        let combined = 0x10000
                                            + ((cp - 0xD800) << 10)
                                            + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    char::from_u32(cp)
                                };
                                out.push(c.unwrap_or('\u{FFFD}'));
                                continue;
                            }
                            _ => return Err(self.err("invalid escape")),
                        }
                        self.pos += 1;
                    }
                    Some(b) if b < 0x20 => return Err(self.err("raw control character")),
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so the
                        // byte sequence is valid by construction).
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                        let c = s.chars().next().ok_or_else(|| self.err("bad utf-8"))?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, JsonError> {
            let end = self.pos + 4;
            if end > self.bytes.len() {
                return Err(self.err("truncated \\u escape"));
            }
            let hex = std::str::from_utf8(&self.bytes[self.pos..end])
                .map_err(|_| self.err("bad \\u escape"))?;
            let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
            self.pos = end;
            Ok(cp)
        }

        fn number(&mut self) -> Result<JsonValue, JsonError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.peek() == Some(b'.') {
                self.pos += 1;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("bad number"))?;
            text.parse::<f64>()
                .map(JsonValue::Number)
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::JsonValue;
    use super::*;

    #[test]
    fn json_escape_handles_special_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn every_event_kind_has_a_unique_name() {
        let mut names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }

    #[test]
    fn events_serialize_with_schema_and_kind_tags() {
        let e = Event::CacheLookup {
            cache: CacheKind::Solve,
            hit: true,
            digest: 0xabc,
        };
        let line = e.to_json();
        assert!(line.starts_with("{\"schema\":1,\"event\":\"cache_lookup\""));
        assert!(line.contains("\"cache\":\"solve\""));
        assert!(line.contains("\"digest\":\"0000000000000abc\""));
        let parsed = JsonValue::parse(&line).unwrap();
        assert_eq!(parsed.get("schema").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(parsed.get("hit").and_then(JsonValue::as_bool), Some(true));
    }

    #[test]
    fn redaction_zeroes_timing_then_effort() {
        let e = Event::WorkerFinished {
            worker: 3,
            nodes_explored: 17,
            nodes_pruned: 5,
            steals: 2,
            simplex_iterations: 99,
        };
        assert!(e
            .to_json_redacted(Redaction::Timing)
            .contains("\"nodes_explored\":17"));
        let redacted = e.to_json_redacted(Redaction::Effort);
        assert!(redacted.contains("\"worker\":3"), "{redacted}");
        assert!(redacted.contains("\"nodes_explored\":0"), "{redacted}");
        assert!(redacted.contains("\"steals\":0"), "{redacted}");

        let p = Event::PhaseFinished {
            phase: Phase::Solve,
            wall: Duration::from_micros(1234),
        };
        assert!(p.to_json().contains("\"wall_us\":1234"));
        assert!(p
            .to_json_redacted(Redaction::Timing)
            .contains("\"wall_us\":0"));
    }

    #[test]
    fn null_sink_is_disabled_and_recording_sink_records() {
        assert!(!NullSink.enabled());
        let sink = RecordingSink::new();
        assert!(sink.enabled());
        assert!(sink.is_empty());
        counter(&sink, "nodes", 7);
        gauge(&sink, "speedup", 1.5);
        gauge(&sink, "bad", f64::NAN);
        assert_eq!(sink.len(), 3);
        let lines = sink.lines(Redaction::None);
        assert!(lines[0].contains("\"name\":\"nodes\""));
        assert!(lines[1].contains("\"value\":1.5"));
        assert!(lines[2].contains("\"value\":null"));
        for line in &lines {
            JsonValue::parse(line).unwrap();
        }
        assert_eq!(sink.take().len(), 3);
        assert!(sink.is_empty());
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let sink = JsonLinesSink::new(Vec::<u8>::new());
        counter(&sink, "a", 1);
        counter(&sink, "b", 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            JsonValue::parse(line).unwrap();
        }
    }

    #[test]
    fn span_timer_emits_phase_event() {
        let sink = RecordingSink::new();
        let span = SpanTimer::start(Phase::Formulation);
        let wall = span.finish(&sink);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::PhaseFinished { phase, wall: w } => {
                assert_eq!(*phase, Phase::Formulation);
                assert_eq!(*w, wall);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn parser_round_trips_nested_documents() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": "x\"\nA"}, "e": true}"#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.keys(), Some(vec!["a", "b", "e"]));
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        let d = v
            .get("b")
            .and_then(|b| b.get("d"))
            .and_then(JsonValue::as_str);
        assert_eq!(d, Some("x\"\nA"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert!(JsonValue::parse("{\"a\":1} junk").is_err());
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }
}
