//! IMP database generation.

use partita_interface::{feasible_kinds, performance_gain, TimingError};
use partita_mop::{CallSiteId, Cycles};

use std::sync::Arc;

use crate::{Imp, ImpId, Instance, ParallelChoice};

/// Resolves a timing-model gain during generation: feasibility was already
/// established by [`feasible_kinds`], so the only expected error is a cycle
/// overflow on an absurdly large job — treat that variant as zero gain (it
/// is simply skipped, since only strictly positive gains enter the
/// database) rather than fabricating a clamped figure.
fn gain_or_zero(result: Result<Cycles, TimingError>) -> Cycles {
    match result {
        Ok(g) => g,
        Err(TimingError::CycleOverflow { .. }) => Cycles::ZERO,
        Err(e) => panic!("kind reported feasible: {e}"),
    }
}

/// The database of implementation methods for every s-call.
///
/// Built either from the instance ([`ImpDb::generate`] — the paper's
/// "data base of IMP_i is built up ... using the MOP list and IP library")
/// or directly from published per-IMP data ([`ImpDb::from_imps`], used to
/// reproduce Tables 1–3 exactly).
///
/// # Retiring IMPs
///
/// The incremental re-solve layer ([`crate::delta`]) edits a database in
/// place: removing an IP block or banning an interface kind *retires* the
/// affected IMPs ([`ImpDb::retire`]) instead of regenerating the database,
/// so every surviving IMP keeps its id — a prerequisite for patching the
/// built ILP model rather than rebuilding it. Retired IMPs stay resident
/// (and visible to [`ImpDb::get`]/[`ImpDb::imps`], so provenance lookups
/// keep working) but disappear from [`ImpDb::for_scall`], which is what
/// formulation consumes. The mask participates in `Debug` and `PartialEq`,
/// so masked and unmasked databases never collide in content-keyed caches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ImpDb {
    imps: Vec<Imp>,
    per_scall: Vec<Vec<ImpId>>,
    /// `active[i]` gates `ImpId(i)`; parallel to `imps`.
    active: Vec<bool>,
}

impl ImpDb {
    /// Builds a database from explicit IMPs.
    #[must_use]
    pub fn from_imps(imps: Vec<Imp>) -> ImpDb {
        let mut db = ImpDb::default();
        for imp in imps {
            db.add(imp);
        }
        db
    }

    /// Adds one IMP, assigning its id.
    pub fn add(&mut self, mut imp: Imp) -> ImpId {
        let id = ImpId(u32::try_from(self.imps.len()).expect("imp count fits u32"));
        imp.id = id;
        let sc = imp.scall.index();
        if self.per_scall.len() <= sc {
            self.per_scall.resize(sc + 1, Vec::new());
        }
        self.per_scall[sc].push(id);
        self.imps.push(imp);
        self.active.push(true);
        id
    }

    /// Retires an IMP: it keeps its id and stays visible to [`ImpDb::get`],
    /// but no longer appears in [`ImpDb::for_scall`] (and therefore in any
    /// formulation built from this database). Returns `false` for an
    /// unknown id. Idempotent.
    pub fn retire(&mut self, id: ImpId) -> bool {
        match self.active.get_mut(id.index()) {
            Some(a) => {
                *a = false;
                true
            }
            None => false,
        }
    }

    /// Undoes [`ImpDb::retire`]. Returns `false` for an unknown id.
    pub fn restore(&mut self, id: ImpId) -> bool {
        match self.active.get_mut(id.index()) {
            Some(a) => {
                *a = true;
                true
            }
            None => false,
        }
    }

    /// `true` when the IMP exists and has not been retired.
    #[must_use]
    pub fn is_active(&self, id: ImpId) -> bool {
        self.active.get(id.index()).copied().unwrap_or(false)
    }

    /// Number of IMPs that have not been retired.
    #[must_use]
    pub fn active_len(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// All IMPs.
    #[must_use]
    pub fn imps(&self) -> &[Imp] {
        &self.imps
    }

    /// Number of IMPs (the paper reports 42 for the GSM encoder, 27 for the
    /// decoder).
    #[must_use]
    pub fn len(&self) -> usize {
        self.imps.len()
    }

    /// `true` when the database is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.imps.is_empty()
    }

    /// Looks up an IMP.
    #[must_use]
    pub fn get(&self, id: ImpId) -> Option<&Imp> {
        self.imps.get(id.index())
    }

    /// The active (non-retired) IMPs of one s-call.
    #[must_use]
    pub fn for_scall(&self, scall: CallSiteId) -> Vec<&Imp> {
        self.per_scall
            .get(scall.index())
            .map(|ids| {
                ids.iter()
                    .filter(|id| self.active[id.index()])
                    .map(|id| &self.imps[id.index()])
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Every IMP of one s-call, retired ones included. The delta-mode
    /// formulation builds its rows from this so a later
    /// [`ImpDb::restore`] is a pure bound patch (the retired IMP's column
    /// and coefficients are already in the matrix, pinned to zero).
    #[must_use]
    pub fn for_scall_all(&self, scall: CallSiteId) -> Vec<&Imp> {
        self.per_scall
            .get(scall.index())
            .map(|ids| ids.iter().map(|id| &self.imps[id.index()]).collect())
            .unwrap_or_default()
    }

    /// Generates the database from an instance: for every s-call, every
    /// library IP implementing its function, every feasible interface type,
    /// and every parallel-code choice.
    ///
    /// Parallel-code variants are produced only on interface types that
    /// support concurrent execution (1 and 3), and only when they strictly
    /// improve the gain. Problem 2 variants append software implementations
    /// of the declared candidate s-calls in prefix order (`[j1]`,
    /// `[j1, j2]`, …).
    #[must_use]
    pub fn generate(instance: &Instance) -> ImpDb {
        let mut db = ImpDb::default();
        for sc in &instance.scalls {
            for ip in instance.library.supporting(&sc.function) {
                db.add_variants(instance, sc, ip);
            }
        }
        db
    }

    /// Appends the IMPs a freshly added IP block contributes, without
    /// touching existing entries — ids already handed out stay stable,
    /// which is what lets the incremental layer ([`crate::delta`]) treat an
    /// IP addition as an append-only database edit. Returns how many IMPs
    /// were added.
    pub fn extend_for_ip(&mut self, instance: &Instance, ip: partita_ip::IpId) -> usize {
        let mut added = 0;
        for sc in &instance.scalls {
            for block in instance.library.supporting(&sc.function) {
                if block.id() == ip {
                    added += self.add_variants(instance, sc, block);
                }
            }
        }
        added
    }

    /// Generates every variant of one (s-call, IP) pairing: each feasible
    /// interface type, plus parallel-code choices where they strictly
    /// improve the gain. Returns the number of IMPs added.
    fn add_variants(
        &mut self,
        instance: &Instance,
        sc: &crate::SCall,
        ip: &partita_ip::IpBlock,
    ) -> usize {
        let before = self.len();
        for (kind, _profile) in feasible_kinds(ip) {
            let area = instance.area_model.interface_area(kind, sc.job).total();
            let base = gain_or_zero(performance_gain(sc.sw_cycles, ip, kind, sc.job, None));
            let base_total = base.scaled(sc.freq);
            if base_total > Cycles::ZERO {
                self.add(Imp::new(
                    sc.id,
                    vec![ip.id()],
                    kind,
                    base_total,
                    area,
                    ParallelChoice::None,
                ));
            }
            if !kind.supports_parallel() {
                continue;
            }
            // Plain parallel code.
            let mut best = base_total;
            if sc.plain_pc > Cycles::ZERO {
                let g = gain_or_zero(performance_gain(
                    sc.sw_cycles,
                    ip,
                    kind,
                    sc.job,
                    Some(sc.plain_pc),
                ))
                .scaled(sc.freq);
                if g > best {
                    self.add(Imp::new(
                        sc.id,
                        vec![ip.id()],
                        kind,
                        g,
                        area,
                        ParallelChoice::PlainPc,
                    ));
                    best = g;
                }
            }
            // Problem 2: software implementations of other s-calls
            // appended to the parallel code, one prefix at a time.
            let mut pc = sc.plain_pc;
            let mut consumed = Vec::new();
            for &j in &sc.sw_pc_candidates {
                let Some(other) = instance.scall(j) else {
                    continue;
                };
                pc += other.sw_cycles;
                consumed.push(j);
                let g = gain_or_zero(performance_gain(sc.sw_cycles, ip, kind, sc.job, Some(pc)))
                    .scaled(sc.freq);
                if g > best {
                    self.add(Imp::new(
                        sc.id,
                        vec![ip.id()],
                        kind,
                        g,
                        area,
                        ParallelChoice::SwScalls(consumed.clone()),
                    ));
                    best = g;
                }
            }
        }
        self.len() - before
    }
}

/// Wraps a borrowed database in a fresh `Arc` by deep-copying it. This is
/// the compatibility path for APIs that take `impl Into<Arc<ImpDb>>`;
/// callers that already hold an `Arc<ImpDb>` should hand over a clone of
/// the handle instead, which copies nothing.
impl From<&ImpDb> for Arc<ImpDb> {
    fn from(db: &ImpDb) -> Arc<ImpDb> {
        Arc::new(db.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SCall;
    use partita_interface::{InterfaceKind, TransferJob};
    use partita_ip::{IpBlock, IpFunction};
    use partita_mop::AreaTenths;

    fn fir_block(name: &str, latency: u32) -> IpBlock {
        IpBlock::builder(name)
            .function(IpFunction::Fir)
            .ports(2, 2)
            .rates(4, 4)
            .latency(latency)
            .area(AreaTenths::from_units(3))
            .build()
    }

    fn base_instance() -> Instance {
        let mut inst = Instance::new("t");
        inst.library.add(fir_block("fir_a", 8));
        inst.add_scall(
            SCall::new(
                "fir",
                IpFunction::Fir,
                Cycles(4000),
                TransferJob::new(64, 64),
            )
            .with_freq(2)
            .with_plain_pc(Cycles(100)),
        );
        inst
    }

    #[test]
    fn generates_all_feasible_kinds() {
        let inst = base_instance();
        let db = ImpDb::generate(&inst);
        let kinds: Vec<_> = db.imps().iter().map(|i| i.interface).collect();
        assert!(kinds.contains(&InterfaceKind::Type0));
        assert!(kinds.contains(&InterfaceKind::Type2));
        // Parallel variants exist for buffered kinds.
        assert!(db
            .imps()
            .iter()
            .any(|i| i.interface == InterfaceKind::Type3 && i.parallel == ParallelChoice::PlainPc));
    }

    #[test]
    fn gains_scale_with_frequency() {
        let mut inst = base_instance();
        inst.scalls[0].freq = 1;
        let g1: Cycles = ImpDb::generate(&inst)
            .for_scall(CallSiteId(0))
            .iter()
            .map(|i| i.gain)
            .max()
            .unwrap();
        inst.scalls[0].freq = 3;
        let g3: Cycles = ImpDb::generate(&inst)
            .for_scall(CallSiteId(0))
            .iter()
            .map(|i| i.gain)
            .max()
            .unwrap();
        assert_eq!(g3.get(), g1.get() * 3);
    }

    #[test]
    fn parallel_variant_beats_base() {
        let inst = base_instance();
        let db = ImpDb::generate(&inst);
        let base = db
            .imps()
            .iter()
            .find(|i| i.interface == InterfaceKind::Type3 && i.parallel == ParallelChoice::None)
            .unwrap();
        let with_pc = db
            .imps()
            .iter()
            .find(|i| i.interface == InterfaceKind::Type3 && i.parallel == ParallelChoice::PlainPc)
            .unwrap();
        assert!(with_pc.gain > base.gain);
    }

    #[test]
    fn problem2_prefixes_generated() {
        let mut inst = Instance::new("p2");
        inst.library.add(fir_block("fir_a", 8));
        // Keep the software times below the fir IP's T_IP (132 cycles for
        // this job) so each appended prefix still improves the gain.
        let other1 = inst.add_scall(SCall::new(
            "iir",
            IpFunction::Iir,
            Cycles(50),
            TransferJob::new(16, 16),
        ));
        let other2 = inst.add_scall(SCall::new(
            "corr",
            IpFunction::Correlator,
            Cycles(60),
            TransferJob::new(16, 16),
        ));
        inst.add_scall(
            SCall::new(
                "fir",
                IpFunction::Fir,
                Cycles(4000),
                TransferJob::new(64, 64),
            )
            .with_sw_pc_candidates(vec![other1, other2]),
        );
        let db = ImpDb::generate(&inst);
        let sw_variants: Vec<_> = db
            .imps()
            .iter()
            .filter(|i| matches!(i.parallel, ParallelChoice::SwScalls(_)))
            .collect();
        assert!(!sw_variants.is_empty());
        // Prefix [other1] and [other1, other2] both appear on some kind.
        assert!(sw_variants
            .iter()
            .any(|i| i.parallel == ParallelChoice::SwScalls(vec![other1])));
        assert!(sw_variants
            .iter()
            .any(|i| i.parallel == ParallelChoice::SwScalls(vec![other1, other2])));
    }

    #[test]
    fn overflowing_job_generates_no_bogus_imps() {
        // A near-u64::MAX transfer job overflows the slow-clock-scaled T_IP
        // on a slow-clocked type-0 pairing. The old saturating clamp could
        // understate T_IP and fabricate gain; now the overflow reads as
        // zero gain, so the variant simply never enters the database.
        let mut inst = Instance::new("huge");
        inst.library.add(
            IpBlock::builder("fir_slow")
                .function(IpFunction::Fir)
                .ports(2, 2)
                .rates(1, 1)
                .latency(4)
                .area(AreaTenths::from_units(3))
                .build(),
        );
        // 2^63 input words: the type-0 slow-clock ×4 overflows u64, while
        // the buffered types' (unscaled) cycle counts still fit.
        inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            Cycles(u64::MAX),
            TransferJob::new(1u64 << 63, 0),
        ));
        let db = ImpDb::generate(&inst);
        assert!(
            !db.imps()
                .iter()
                .any(|i| i.interface == InterfaceKind::Type0),
            "overflowing type-0 pairing must be skipped, not clamped"
        );
    }

    #[test]
    fn no_ip_means_no_imps() {
        let mut inst = Instance::new("none");
        inst.add_scall(SCall::new(
            "vlc",
            IpFunction::Custom("vlc".into()),
            Cycles(100),
            TransferJob::new(4, 4),
        ));
        let db = ImpDb::generate(&inst);
        assert!(db.is_empty());
        assert!(db.for_scall(CallSiteId(0)).is_empty());
        assert!(db.for_scall(CallSiteId(7)).is_empty());
    }

    #[test]
    fn retire_masks_for_scall_but_keeps_get_and_ids() {
        use partita_ip::IpId;
        let mut db = ImpDb::from_imps(vec![
            Imp::new(
                CallSiteId(0),
                vec![IpId(1)],
                InterfaceKind::Type0,
                Cycles(5),
                AreaTenths::ZERO,
                ParallelChoice::None,
            ),
            Imp::new(
                CallSiteId(0),
                vec![IpId(2)],
                InterfaceKind::Type1,
                Cycles(9),
                AreaTenths::ZERO,
                ParallelChoice::None,
            ),
        ]);
        assert!(db.retire(ImpId(0)));
        assert!(!db.is_active(ImpId(0)));
        assert_eq!(db.active_len(), 1);
        assert_eq!(db.len(), 2, "retired IMPs stay resident");
        assert!(db.get(ImpId(0)).is_some(), "provenance lookups survive");
        let visible = db.for_scall(CallSiteId(0));
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].id, ImpId(1), "surviving ids are stable");
        // Masked and unmasked databases must not collide in content keys.
        let unmasked = {
            let mut d = db.clone();
            d.restore(ImpId(0));
            d
        };
        assert_ne!(format!("{db:?}"), format!("{unmasked:?}"));
        assert_ne!(db, unmasked);
        assert!(db.restore(ImpId(0)));
        assert_eq!(db, unmasked);
        assert!(!db.retire(ImpId(99)), "unknown ids are reported");
        assert!(!db.is_active(ImpId(99)));
    }

    #[test]
    fn from_imps_assigns_ids() {
        use partita_ip::IpId;
        let db = ImpDb::from_imps(vec![
            Imp::new(
                CallSiteId(0),
                vec![IpId(1)],
                InterfaceKind::Type0,
                Cycles(5),
                AreaTenths::ZERO,
                ParallelChoice::None,
            ),
            Imp::new(
                CallSiteId(0),
                vec![IpId(2)],
                InterfaceKind::Type1,
                Cycles(9),
                AreaTenths::ZERO,
                ParallelChoice::None,
            ),
        ]);
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(ImpId(1)).unwrap().ips, vec![IpId(2)]);
        assert_eq!(db.for_scall(CallSiteId(0)).len(), 2);
    }
}
