//! SC-PC conflict detection (paper §4, "Selection rule").
//!
//! Two IMPs have an *SC-PC conflict* when one implements s-call `i` with an
//! IP while the other uses the **software implementation** of `i` as its
//! parallel code: the call cannot be both in hardware and in software.
//! (Plain *SC conflicts* — two IMPs for the same s-call — are already
//! excluded by the `Σ_j x_ij ≤ 1` constraint and need no pairs here.)

use crate::{ImpDb, ImpId};

/// A pair of mutually exclusive IMPs (`x_a + x_b ≤ 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConflictPair {
    /// First IMP.
    pub a: ImpId,
    /// Second IMP.
    pub b: ImpId,
}

/// Computes all SC-PC conflict pairs in the database.
#[must_use]
pub fn sc_pc_conflicts(db: &ImpDb) -> Vec<ConflictPair> {
    let mut out = Vec::new();
    for imp in db.imps() {
        for &consumed in imp.parallel.consumed_scalls() {
            for other in db.for_scall(consumed) {
                // `other` implements the consumed s-call with an IP; `imp`
                // needs that call in software.
                out.push(ConflictPair {
                    a: imp.id,
                    b: other.id,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Imp, ParallelChoice};
    use partita_interface::InterfaceKind;
    use partita_ip::IpId;
    use partita_mop::{AreaTenths, CallSiteId, Cycles};

    fn imp(scall: u32, parallel: ParallelChoice) -> Imp {
        Imp::new(
            CallSiteId(scall),
            vec![IpId(0)],
            InterfaceKind::Type1,
            Cycles(10),
            AreaTenths::ZERO,
            parallel,
        )
    }

    #[test]
    fn consuming_imp_conflicts_with_all_imps_of_consumed_scall() {
        let db = ImpDb::from_imps(vec![
            imp(0, ParallelChoice::SwScalls(vec![CallSiteId(1)])), // imp0
            imp(1, ParallelChoice::None),                          // imp1
            imp(1, ParallelChoice::PlainPc),                       // imp2
            imp(2, ParallelChoice::None),                          // imp3
        ]);
        let pairs = sc_pc_conflicts(&db);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&ConflictPair {
            a: ImpId(0),
            b: ImpId(1)
        }));
        assert!(pairs.contains(&ConflictPair {
            a: ImpId(0),
            b: ImpId(2)
        }));
    }

    #[test]
    fn no_sw_pc_means_no_conflicts() {
        let db = ImpDb::from_imps(vec![
            imp(0, ParallelChoice::None),
            imp(1, ParallelChoice::PlainPc),
        ]);
        assert!(sc_pc_conflicts(&db).is_empty());
    }

    #[test]
    fn multi_consumption_conflicts_with_every_member() {
        let db = ImpDb::from_imps(vec![
            imp(
                0,
                ParallelChoice::SwScalls(vec![CallSiteId(1), CallSiteId(2)]),
            ),
            imp(1, ParallelChoice::None),
            imp(2, ParallelChoice::None),
        ]);
        let pairs = sc_pc_conflicts(&db);
        assert_eq!(pairs.len(), 2);
    }
}
