//! Implementation methods (IMPs).

use std::fmt;

use partita_interface::InterfaceKind;
use partita_ip::IpId;
use partita_mop::{AreaTenths, CallSiteId, Cycles};

/// Identifier of an IMP inside an [`crate::ImpDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ImpId(pub u32);

impl ImpId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ImpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "imp{}", self.0)
    }
}

/// How an IMP exploits parallel execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ParallelChoice {
    /// No parallel code (also the only option for interface types 0/2).
    None,
    /// The plain parallel code `PC_i` of the s-call (kernel code only).
    PlainPc,
    /// The plain parallel code extended with the **software
    /// implementations** of these s-calls (Problem 2). Selecting this IMP
    /// conflicts with every IMP of the listed s-calls (SC-PC conflict).
    SwScalls(Vec<CallSiteId>),
}

impl ParallelChoice {
    /// S-calls consumed as software parallel code (empty unless
    /// [`ParallelChoice::SwScalls`]).
    #[must_use]
    pub fn consumed_scalls(&self) -> &[CallSiteId] {
        match self {
            ParallelChoice::SwScalls(s) => s,
            _ => &[],
        }
    }
}

/// One implementation method `IMP_ij`: an (IP set, interface, parallel-code)
/// choice for one s-call, with its total gain and interface area.
///
/// `ips` is the paper's `s_ijk` row: composite IMPs produced by *IMP
/// flatten* may use several IPs at once.
#[derive(Debug, Clone, PartialEq)]
pub struct Imp {
    /// The IMP's identifier (assigned by the database).
    pub id: ImpId,
    /// The s-call this IMP implements.
    pub scall: CallSiteId,
    /// The IPs this IMP instantiates (`s_ijk = 1`).
    pub ips: Vec<IpId>,
    /// Interface type used (composite IMPs report the outermost one).
    pub interface: InterfaceKind,
    /// Total performance gain `g_ij` (already multiplied by the profiled
    /// frequency).
    pub gain: Cycles,
    /// Interface area `c_ij` (the IP areas `a_k` are charged once via the
    /// fixed-charge indicator, not here).
    pub interface_area: AreaTenths,
    /// Power drawn when this implementation is active, in milliwatts (the
    /// paper lists power among each IMP's attributes; zero when unmodelled).
    pub power_mw: u64,
    /// Parallel-execution choice.
    pub parallel: ParallelChoice,
}

impl Imp {
    /// Creates an IMP (the id is assigned when added to a database).
    #[must_use]
    pub fn new(
        scall: CallSiteId,
        ips: Vec<IpId>,
        interface: InterfaceKind,
        gain: Cycles,
        interface_area: AreaTenths,
        parallel: ParallelChoice,
    ) -> Imp {
        Imp {
            id: ImpId(0),
            scall,
            ips,
            interface,
            gain,
            interface_area,
            power_mw: 0,
            parallel,
        }
    }

    /// Sets the power attribute.
    #[must_use]
    pub fn with_power_mw(mut self, power_mw: u64) -> Imp {
        self.power_mw = power_mw;
        self
    }

    /// `true` if this IMP uses IP `ip`.
    #[must_use]
    pub fn uses_ip(&self, ip: IpId) -> bool {
        self.ips.contains(&ip)
    }
}

impl fmt::Display for Imp {
    /// Paper-style rendering: `SC13: IP12,IF0,115037,3`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.scall)?;
        for (i, ip) in self.ips.iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            write!(f, "{ip}")?;
        }
        write!(
            f,
            ",{},{},{}",
            self.interface,
            self.gain.get(),
            self.interface_area
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_format() {
        let imp = Imp::new(
            CallSiteId(13),
            vec![IpId(12)],
            InterfaceKind::Type0,
            Cycles(115_037),
            AreaTenths::from_units(3),
            ParallelChoice::None,
        );
        assert_eq!(imp.to_string(), "sc13: IP12,IF0,115037,3");
    }

    #[test]
    fn composite_imps_list_all_ips() {
        let imp = Imp::new(
            CallSiteId(1),
            vec![IpId(2), IpId(5)],
            InterfaceKind::Type1,
            Cycles(10),
            AreaTenths::from_tenths(15),
            ParallelChoice::PlainPc,
        );
        assert!(imp.uses_ip(IpId(2)));
        assert!(imp.uses_ip(IpId(5)));
        assert!(!imp.uses_ip(IpId(3)));
        assert!(imp.to_string().contains("IP2+IP5"));
    }

    #[test]
    fn consumed_scalls() {
        assert!(ParallelChoice::None.consumed_scalls().is_empty());
        assert!(ParallelChoice::PlainPc.consumed_scalls().is_empty());
        let c = ParallelChoice::SwScalls(vec![CallSiteId(4)]);
        assert_eq!(c.consumed_scalls(), &[CallSiteId(4)]);
    }
}
