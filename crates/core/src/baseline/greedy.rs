//! Greedy gain/area-ratio baseline.

use std::collections::BTreeSet;

use partita_ip::IpId;
use partita_mop::{CallSiteId, Cycles};

use crate::solver::{RequiredGains, Selection};
use crate::{sc_pc_conflicts, CoreError, Imp, ImpDb, ImpId, Instance};

/// Selects IMPs greedily by marginal gain per marginal area until every path
/// meets its required gain.
///
/// Marginal area counts an IP only the first time it is instantiated
/// (mirroring the ILP's fixed-charge objective), so the heuristic still
/// prefers IP sharing — its losses against the ILP come from myopic
/// ordering, not from mis-modelling.
///
/// # Errors
///
/// [`CoreError::Infeasible`] when the greedy order exhausts the database
/// before meeting the gains (the ILP may still find a feasible set).
pub fn solve_greedy(
    instance: &Instance,
    db: &ImpDb,
    gains: &RequiredGains,
) -> Result<Selection, CoreError> {
    if db.is_empty() {
        return Err(CoreError::NoImps);
    }
    let conflicts = sc_pc_conflicts(db);
    let paths = instance.effective_paths();
    let mut deficit: Vec<(usize, Cycles)> = paths
        .iter()
        .enumerate()
        .map(|(i, p)| (i, gains.for_path(p.id)))
        .collect();

    let mut chosen: Vec<Imp> = Vec::new();
    let mut chosen_ids: BTreeSet<ImpId> = BTreeSet::new();
    let mut used_scalls: BTreeSet<CallSiteId> = BTreeSet::new();
    let mut used_ips: BTreeSet<IpId> = BTreeSet::new();
    let mut blocked: BTreeSet<ImpId> = BTreeSet::new();

    loop {
        if deficit.iter().all(|&(_, d)| d == Cycles::ZERO) {
            let objective = chosen
                .iter()
                .map(|i| i.interface_area.tenths())
                .sum::<i64>()
                + used_ips
                    .iter()
                    .filter_map(|&ip| instance.library.block(ip))
                    .map(|b| b.area().tenths())
                    .sum::<i64>();
            return Ok(Selection::from_chosen(
                instance,
                chosen,
                objective as f64,
                crate::OptimalityStatus::Heuristic,
            ));
        }

        // Pick the best admissible IMP by (deficit-relevant gain) / area.
        let mut best: Option<(f64, &Imp)> = None;
        for imp in db.imps() {
            if chosen_ids.contains(&imp.id)
                || blocked.contains(&imp.id)
                || used_scalls.contains(&imp.scall)
            {
                continue;
            }
            // Gain only counts toward paths still in deficit.
            let useful: u64 = deficit
                .iter()
                .filter(|&&(pi, d)| d > Cycles::ZERO && paths[pi].scalls.contains(&imp.scall))
                .map(|_| imp.gain.get())
                .max()
                .unwrap_or(0);
            if useful == 0 {
                continue;
            }
            let marginal_area: i64 = imp.interface_area.tenths()
                + imp
                    .ips
                    .iter()
                    .filter(|ip| !used_ips.contains(ip))
                    .filter_map(|&ip| instance.library.block(ip))
                    .map(|b| b.area().tenths())
                    .sum::<i64>();
            let ratio = useful as f64 / (marginal_area.max(1)) as f64;
            if best.as_ref().is_none_or(|(r, _)| ratio > *r) {
                best = Some((ratio, imp));
            }
        }

        let Some((_, pick)) = best else {
            return Err(CoreError::Infeasible { path: None });
        };
        chosen_ids.insert(pick.id);
        used_scalls.insert(pick.scall);
        used_ips.extend(pick.ips.iter().copied());
        // Block conflicting IMPs and IMPs of consumed s-calls.
        for pair in &conflicts {
            if pair.a == pick.id {
                blocked.insert(pair.b);
            }
            if pair.b == pick.id {
                blocked.insert(pair.a);
            }
        }
        for &consumed in pick.parallel.consumed_scalls() {
            used_scalls.insert(consumed);
        }
        for (pi, d) in &mut deficit {
            if paths[*pi].scalls.contains(&pick.scall) {
                *d = d.saturating_sub(pick.gain);
            }
        }
        chosen.push(pick.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParallelChoice, SCall, SolveOptions, Solver};
    use partita_interface::{InterfaceKind, TransferJob};
    use partita_ip::{IpBlock, IpFunction};
    use partita_mop::AreaTenths;

    /// An instance where greedy is provably suboptimal: one big-ratio IMP
    /// that cannot finish the job alone forces a worse total than the ILP's
    /// coordinated pick.
    fn trap_instance() -> (Instance, ImpDb) {
        let mut inst = Instance::new("trap");
        let ip_a = inst.library.add(
            IpBlock::builder("a")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(1))
                .build(),
        );
        let ip_b = inst.library.add(
            IpBlock::builder("b")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(10))
                .build(),
        );
        let s0 = inst.add_scall(SCall::new(
            "f0",
            IpFunction::Fir,
            Cycles(1000),
            TransferJob::new(4, 4),
        ));
        let s1 = inst.add_scall(SCall::new(
            "f1",
            IpFunction::Fir,
            Cycles(1000),
            TransferJob::new(4, 4),
        ));
        inst.add_path(vec![s0, s1]);
        let mk = |sc, ips: Vec<IpId>, gain| {
            Imp::new(
                sc,
                ips,
                InterfaceKind::Type0,
                Cycles(gain),
                AreaTenths::from_tenths(1),
                ParallelChoice::None,
            )
        };
        // Greedy grabs (s0, ip_a) at ratio 60/1.1; it then must add
        // (s1, ip_b) at huge area. The ILP instead puts both on ip_b.
        let db = ImpDb::from_imps(vec![
            mk(s0, vec![ip_a], 60),
            mk(s0, vec![ip_b], 100),
            mk(s1, vec![ip_b], 100),
        ]);
        (inst, db)
    }

    #[test]
    fn greedy_meets_gains_but_ilp_is_cheaper() {
        let (inst, db) = trap_instance();
        let gains = RequiredGains::uniform(Cycles(160));
        let greedy = solve_greedy(&inst, &db, &gains).unwrap();
        assert!(greedy.total_gain().get() >= 160);
        let exact = Solver::new(&inst)
            .with_imps(db)
            .solve(&SolveOptions::problem2(gains))
            .unwrap();
        assert!(exact.total_gain().get() >= 160);
        assert!(
            exact.total_area() < greedy.total_area(),
            "ilp {} !< greedy {}",
            exact.total_area(),
            greedy.total_area()
        );
    }

    #[test]
    fn greedy_respects_conflicts() {
        let mut inst = Instance::new("c");
        let ip = inst.library.add(
            IpBlock::builder("x")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(1))
                .build(),
        );
        let s0 = inst.add_scall(SCall::new(
            "f",
            IpFunction::Fir,
            Cycles(10),
            TransferJob::new(2, 2),
        ));
        let s1 = inst.add_scall(SCall::new(
            "g",
            IpFunction::Fir,
            Cycles(10),
            TransferJob::new(2, 2),
        ));
        inst.add_path(vec![s0, s1]);
        let db = ImpDb::from_imps(vec![
            Imp::new(
                s0,
                vec![ip],
                InterfaceKind::Type1,
                Cycles(100),
                AreaTenths::from_tenths(1),
                ParallelChoice::SwScalls(vec![s1]),
            ),
            Imp::new(
                s1,
                vec![ip],
                InterfaceKind::Type0,
                Cycles(50),
                AreaTenths::from_tenths(1),
                ParallelChoice::None,
            ),
        ]);
        // Greedy takes the 100-gain IMP; the s1 IMP is then blocked, so a
        // requirement of 120 is greedy-infeasible.
        let err = solve_greedy(&inst, &db, &RequiredGains::uniform(Cycles(120))).unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }));
        // But 100 is fine and uses one imp.
        let ok = solve_greedy(&inst, &db, &RequiredGains::uniform(Cycles(100))).unwrap();
        assert_eq!(ok.chosen().len(), 1);
    }

    #[test]
    fn empty_db_is_rejected() {
        let inst = Instance::new("e");
        assert_eq!(
            solve_greedy(&inst, &ImpDb::default(), &RequiredGains::uniform(Cycles(1))).unwrap_err(),
            CoreError::NoImps
        );
    }

    use partita_ip::IpId;
}
