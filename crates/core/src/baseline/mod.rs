//! Baseline selectors for the evaluation.
//!
//! * [`no_interface`] — the prior state of the art the paper compares
//!   against (reference \[8\], Alomary et al.): accelerator selection that neither
//!   models interfaces nor exploits parallel execution.
//! * [`greedy`] — a gain/area-ratio heuristic over the full IMP database,
//!   showing the value of exact ILP optimisation.

pub mod greedy;
pub mod no_interface;

pub use greedy::solve_greedy;
pub use no_interface::solve_no_interface;
