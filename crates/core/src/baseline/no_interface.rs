//! The prior state-of-the-art baseline (paper reference \[8\]).
//!
//! Alomary et al. (\[8\]) select functional accelerators optimally but (a) do not
//! model the interface between core and accelerator — every selection is
//! charged and timed as the plain software interface — and (b) cannot
//! overlap kernel and accelerator execution. The paper's Tables highlight
//! solutions "not possible in the previous approach because it neither
//! supported the parallel execution nor considered the interface method".

use partita_interface::InterfaceKind;

use crate::solver::{RequiredGains, Selection, SolveOptions, Solver};
use crate::{CoreError, ImpDb, Instance, ParallelChoice};

/// Restricts the database to the prior approach's capabilities and solves
/// exactly on that subset: only type-0 (software, bufferless) interfaces and
/// no parallel execution.
///
/// # Errors
///
/// [`CoreError::Infeasible`] when the restricted capabilities cannot meet
/// the gains (even though the full approach may succeed), or
/// [`CoreError::NoImps`] when nothing survives the filter.
pub fn solve_no_interface(
    instance: &Instance,
    db: &ImpDb,
    gains: &RequiredGains,
) -> Result<Selection, CoreError> {
    let filtered: Vec<_> = db
        .imps()
        .iter()
        .filter(|imp| imp.interface == InterfaceKind::Type0 && imp.parallel == ParallelChoice::None)
        .cloned()
        .collect();
    if filtered.is_empty() {
        return Err(CoreError::NoImps);
    }
    let restricted = ImpDb::from_imps(filtered);
    Solver::new(instance)
        .with_imps(restricted)
        .solve(&SolveOptions::problem2(gains.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Imp, SCall};
    use partita_interface::TransferJob;
    use partita_ip::{IpBlock, IpFunction, IpId};
    use partita_mop::{AreaTenths, Cycles};

    fn instance_with_parallel_edge() -> (Instance, ImpDb) {
        let mut inst = Instance::new("t");
        let ip = inst.library.add(
            IpBlock::builder("fir")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(3))
                .build(),
        );
        let sc = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            Cycles(1000),
            TransferJob::new(8, 8),
        ));
        inst.add_path(vec![sc]);
        let db = ImpDb::from_imps(vec![
            Imp::new(
                sc,
                vec![ip],
                InterfaceKind::Type0,
                Cycles(400),
                AreaTenths::from_tenths(3),
                ParallelChoice::None,
            ),
            Imp::new(
                sc,
                vec![ip],
                InterfaceKind::Type3,
                Cycles(900),
                AreaTenths::from_tenths(20),
                ParallelChoice::PlainPc,
            ),
        ]);
        (inst, db)
    }

    #[test]
    fn baseline_cannot_reach_parallel_only_gains() {
        let (inst, db) = instance_with_parallel_edge();
        // 800 needs the type-3 + parallel IMP: baseline fails, full solver
        // succeeds — the paper's headline comparison.
        let gains = RequiredGains::uniform(Cycles(800));
        assert!(matches!(
            solve_no_interface(&inst, &db, &gains),
            Err(CoreError::Infeasible { .. })
        ));
        let full = Solver::new(&inst)
            .with_imps(db)
            .solve(&SolveOptions::problem2(gains))
            .unwrap();
        assert_eq!(full.chosen()[0].interface, InterfaceKind::Type3);
    }

    #[test]
    fn baseline_succeeds_within_type0_reach() {
        let (inst, db) = instance_with_parallel_edge();
        let sel = solve_no_interface(&inst, &db, &RequiredGains::uniform(Cycles(300))).unwrap();
        assert_eq!(sel.chosen().len(), 1);
        assert_eq!(sel.chosen()[0].interface, InterfaceKind::Type0);
        assert_eq!(sel.chosen()[0].ips, vec![IpId(0)]);
    }

    #[test]
    fn all_filtered_out_is_no_imps() {
        let (inst, db) = instance_with_parallel_edge();
        let only_t3: Vec<Imp> = db
            .imps()
            .iter()
            .filter(|i| i.interface == InterfaceKind::Type3)
            .cloned()
            .collect();
        let db3 = ImpDb::from_imps(only_t3);
        assert_eq!(
            solve_no_interface(&inst, &db3, &RequiredGains::uniform(Cycles(1))).unwrap_err(),
            CoreError::NoImps
        );
    }
}
