//! Core-layer errors.

use std::error::Error;
use std::fmt;

use partita_ilp::IlpError;
use partita_mop::{CallSiteId, PathId};

/// Errors raised by the S-instruction generator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// No IMP database was generated or supplied.
    NoImps,
    /// The selection problem is infeasible: no IMP set reaches the required
    /// gain on some path.
    Infeasible {
        /// A path that cannot meet its requirement (when identifiable).
        path: Option<PathId>,
    },
    /// A referenced s-call does not exist in the instance.
    UnknownSCall(CallSiteId),
    /// A path references an s-call that is not in the instance.
    BadPath {
        /// The path.
        path: PathId,
        /// The missing s-call.
        scall: CallSiteId,
    },
    /// Every solve budget ran out before any feasible selection was found;
    /// the problem was *not* proven infeasible. Raised only when
    /// [`crate::SolveBudget::fallback`] is disabled or the fallback backend
    /// also fails.
    BudgetExhausted,
    /// The underlying ILP solver failed.
    Ilp(IlpError),
    /// A selection failed independent verification.
    InvalidSelection(String),
    /// A call-hierarchy specification is structurally invalid (empty child
    /// list, duplicate or self-referential children, a child consumed
    /// twice, …).
    MalformedHierarchy {
        /// The parent s-call of the offending spec.
        parent: CallSiteId,
        /// What is wrong with it.
        detail: String,
    },
    /// The post-solve audit ([`crate::verify::SelectionAuditor`]) found
    /// violations in a selection the solver claimed was feasible.
    AuditFailed {
        /// Number of violations.
        violations: usize,
        /// The JSON rendering of the full [`crate::verify::AuditReport`].
        report: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoImps => f.write_str("no implementation methods available"),
            CoreError::Infeasible { path: Some(p) } => {
                write!(
                    f,
                    "no ip/interface selection meets the required gain on {p}"
                )
            }
            CoreError::Infeasible { path: None } => {
                f.write_str("no ip/interface selection meets the required gains")
            }
            CoreError::UnknownSCall(sc) => write!(f, "unknown s-call {sc}"),
            CoreError::BadPath { path, scall } => {
                write!(f, "{path} references unknown s-call {scall}")
            }
            CoreError::BudgetExhausted => {
                f.write_str("solve budget exhausted before a feasible selection was found")
            }
            CoreError::Ilp(e) => write!(f, "ilp solver failed: {e}"),
            CoreError::InvalidSelection(why) => write!(f, "invalid selection: {why}"),
            CoreError::MalformedHierarchy { parent, detail } => {
                write!(f, "malformed hierarchy at {parent}: {detail}")
            }
            CoreError::AuditFailed { violations, report } => {
                write!(
                    f,
                    "selection failed audit with {violations} violation(s): {report}"
                )
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Ilp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IlpError> for CoreError {
    fn from(e: IlpError) -> CoreError {
        match e {
            IlpError::Infeasible => CoreError::Infeasible { path: None },
            other => CoreError::Ilp(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_ilp_maps_to_core_infeasible() {
        assert_eq!(
            CoreError::from(IlpError::Infeasible),
            CoreError::Infeasible { path: None }
        );
        assert!(matches!(
            CoreError::from(IlpError::Unbounded),
            CoreError::Ilp(_)
        ));
    }

    #[test]
    fn display() {
        assert!(CoreError::NoImps.to_string().contains("implementation"));
        let e = CoreError::Infeasible {
            path: Some(PathId(2)),
        };
        assert!(e.to_string().contains("P2"));
    }

    #[test]
    fn new_variants_display() {
        let e = CoreError::MalformedHierarchy {
            parent: CallSiteId(4),
            detail: "parent listed among its own children".into(),
        };
        assert!(e.to_string().contains("sc4"));
        assert!(e.to_string().contains("children"));
        let e = CoreError::AuditFailed {
            violations: 3,
            report: "{\"clean\":false}".into(),
        };
        assert!(e.to_string().contains("3 violation(s)"));
        assert!(e.to_string().contains("clean"));
    }
}
