//! Versioned request/response envelope for the solve service.
//!
//! The paper's workflow (§5) is interactive: a designer nudges required
//! gains and re-solves. Serving that loop to many concurrent tenants needs
//! a *stable wire contract* that outlives any one daemon build, so this
//! module defines it in core — next to the types it transports — rather
//! than in the service crate that happens to host the listener today:
//!
//! * [`Request`] / [`Response`] — one JSON object per line (NDJSON). Every
//!   envelope carries `api_version`, a tenant id and a caller-chosen
//!   request id that is echoed back verbatim, so replies can be matched
//!   to requests even when a concurrent daemon completes them out of
//!   order.
//! * [`ApiError`] — the single public error surface. Every failure a
//!   caller can observe — malformed input, infeasible instances, budget
//!   exhaustion, audit rejections, workload-generator errors, admission
//!   control — maps to one variant with a **stable numeric code**
//!   (see [`ApiError::code`]). Library `Result`s and daemon replies share
//!   this type; nothing is stringly-typed twice.
//! * [`SolveSpec`] — the caller-facing subset of [`SolveOptions`]:
//!   everything that changes *what* is solved or how hard the solver may
//!   try, nothing that is an internal tuning handle (warm-start hints and
//!   retained bases are the daemon's business, not the protocol's).
//!
//! # Versioning policy
//!
//! `api_version` is a single integer ([`API_VERSION`]). Additive changes —
//! new optional request fields, new response fields, new error codes — do
//! not bump it; parsers must ignore unknown fields. Anything that changes
//! the meaning of an existing field bumps it, and a daemon answers a
//! version it does not speak with [`ApiError::UnsupportedVersion`]
//! (code 101) rather than guessing.
//!
//! # Example
//!
//! ```
//! use partita_core::api::{Request, RequestBody, SolveSpec, API_VERSION};
//!
//! let line = r#"{"api_version":1,"id":"r1","tenant":"alice",
//!     "method":"solve","instance":"viterbi-0003","rg":1200}"#
//!     .replace('\n', "");
//! let req = Request::parse(&line).expect("well-formed request");
//! assert_eq!(req.api_version, API_VERSION);
//! assert_eq!(req.tenant, "alice");
//! match &req.body {
//!     RequestBody::Solve { instance, spec } => {
//!         assert_eq!(instance, "viterbi-0003");
//!         assert_eq!(spec.rg, 1200);
//!     }
//!     _ => unreachable!(),
//! }
//! // Envelopes round-trip, which is how scripted request logs are built.
//! assert_eq!(Request::parse(&req.to_json()).unwrap().to_json(), req.to_json());
//! # let _ = SolveSpec::default();
//! ```

use std::fmt;

use crate::engine::{Backend, OptimalityStatus, SolveBudget};
use crate::error::CoreError;
use crate::solver::{ProblemKind, RequiredGains, Selection, SolveOptions};
use crate::telemetry::json::JsonValue;
use crate::telemetry::{json_escape, Redaction};
use partita_mop::Cycles;

/// The wire-protocol version this build speaks. See the module docs for
/// the bump policy.
pub const API_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Error surface
// ---------------------------------------------------------------------------

/// The unified public error surface: every failure a service caller (or a
/// facade user) can observe, each with a stable numeric code.
///
/// Codes are part of the wire contract and never renumbered: 1xx are
/// protocol errors, 2xx wrap [`CoreError`] solver failures, 3xx wrap
/// workload/generator failures, 429 is admission control, 5xx is the
/// daemon itself.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ApiError {
    /// The request line was not a well-formed envelope (bad JSON, missing
    /// required field, wrong type). Code 100.
    Malformed(String),
    /// The envelope named an `api_version` this build does not speak.
    /// Code 101.
    UnsupportedVersion {
        /// The version the caller asked for.
        got: u64,
    },
    /// The envelope named an unknown `method`. Code 102.
    UnknownMethod(String),
    /// The request referenced an instance id the daemon cannot resolve
    /// (not in the corpus manifest, or its pinned digest mismatched).
    /// Code 103.
    UnknownInstance(String),
    /// The envelope parsed but its parameters are unusable (empty sweep,
    /// zero-length batch, out-of-range knob). Code 104.
    InvalidParams(String),
    /// A solver-layer failure ([`CoreError`]), including audit rejections.
    /// Codes 200–208; see [`ApiError::code`].
    Core(CoreError),
    /// A workload-generation failure (e.g. a degenerate synth parameter
    /// set). Code 300.
    Workload(String),
    /// Admission control refused the request (tenant over its in-flight or
    /// queue limits). Code 429.
    Overloaded {
        /// The tenant that was refused.
        tenant: String,
        /// What limit was hit.
        detail: String,
    },
    /// The daemon itself failed in a way no other variant describes.
    /// Code 500.
    Internal(String),
}

impl ApiError {
    /// The stable numeric code of this error. Part of the wire contract:
    /// codes are never renumbered, only appended.
    #[must_use]
    pub fn code(&self) -> u32 {
        match self {
            ApiError::Malformed(_) => 100,
            ApiError::UnsupportedVersion { .. } => 101,
            ApiError::UnknownMethod(_) => 102,
            ApiError::UnknownInstance(_) => 103,
            ApiError::InvalidParams(_) => 104,
            ApiError::Core(e) => match e {
                CoreError::Infeasible { .. } => 200,
                CoreError::BudgetExhausted => 201,
                CoreError::AuditFailed { .. } => 202,
                CoreError::NoImps => 203,
                CoreError::UnknownSCall(_) => 204,
                CoreError::BadPath { .. } => 205,
                CoreError::InvalidSelection(_) => 206,
                CoreError::MalformedHierarchy { .. } => 207,
                CoreError::Ilp(_) => 208,
            },
            ApiError::Workload(_) => 300,
            ApiError::Overloaded { .. } => 429,
            ApiError::Internal(_) => 500,
        }
    }

    /// The snake_case kind tag rendered next to the code.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ApiError::Malformed(_) => "malformed_request",
            ApiError::UnsupportedVersion { .. } => "unsupported_version",
            ApiError::UnknownMethod(_) => "unknown_method",
            ApiError::UnknownInstance(_) => "unknown_instance",
            ApiError::InvalidParams(_) => "invalid_params",
            ApiError::Core(e) => match e {
                CoreError::Infeasible { .. } => "infeasible",
                CoreError::BudgetExhausted => "budget_exhausted",
                CoreError::AuditFailed { .. } => "audit_failed",
                CoreError::NoImps => "no_imps",
                CoreError::UnknownSCall(_) => "unknown_scall",
                CoreError::BadPath { .. } => "bad_path",
                CoreError::InvalidSelection(_) => "invalid_selection",
                CoreError::MalformedHierarchy { .. } => "malformed_hierarchy",
                CoreError::Ilp(_) => "ilp",
            },
            ApiError::Workload(_) => "workload",
            ApiError::Overloaded { .. } => "overloaded",
            ApiError::Internal(_) => "internal",
        }
    }

    /// Renders the error as the JSON fragment used inside a
    /// [`Response`]: `{"code":…,"kind":"…","detail":"…"}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
            self.code(),
            self.kind(),
            json_escape(&self.to_string())
        )
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            ApiError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported api_version {got} (this build speaks {API_VERSION})"
                )
            }
            ApiError::UnknownMethod(m) => write!(f, "unknown method: {m}"),
            ApiError::UnknownInstance(id) => write!(f, "unknown instance: {id}"),
            ApiError::InvalidParams(detail) => write!(f, "invalid params: {detail}"),
            ApiError::Core(e) => write!(f, "{e}"),
            ApiError::Workload(detail) => write!(f, "workload generation failed: {detail}"),
            ApiError::Overloaded { tenant, detail } => {
                write!(f, "tenant {tenant} over budget: {detail}")
            }
            ApiError::Internal(detail) => write!(f, "internal error: {detail}"),
        }
    }
}

impl std::error::Error for ApiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApiError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ApiError {
    fn from(e: CoreError) -> ApiError {
        ApiError::Core(e)
    }
}

// ---------------------------------------------------------------------------
// Solve spec
// ---------------------------------------------------------------------------

/// The caller-facing solve parameters: the subset of [`SolveOptions`] a
/// service request may set.
///
/// Deliberately absent: warm-start hints and retained bases (internal
/// acceleration handles the daemon manages per chain) and the audit flag's
/// companions — none of them change *which* selection is returned, which
/// is also why they are excluded from canonical cache keys (see
/// [`crate::sweep::canonical_solve_key`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveSpec {
    /// Which formulation to solve (wire values `problem1` / `problem2`;
    /// default `problem2`).
    pub problem: ProblemKind,
    /// Uniform required gain in cycles (the `rg` field). For sweep and
    /// delta requests this is the base value; the `rgs` array supplies the
    /// visited points.
    pub rg: u64,
    /// Solver backend. The wire values are the canonical backend names
    /// ([`Backend::name`]): `branch_bound` / `exhaustive` / `greedy` /
    /// `lagrangian` / `conflict_enum` / `portfolio`; default
    /// `branch_bound`. See `docs/BACKENDS.md` for when to use which.
    pub backend: Backend,
    /// Branch-and-bound node cap (default: the [`SolveBudget`] default).
    pub max_nodes: Option<usize>,
    /// Wall-clock deadline in milliseconds (default: none).
    pub deadline_ms: Option<u64>,
    /// Worker threads. Defaults to 1: service answers are deterministic
    /// unless a tenant explicitly asks for parallel search (which still
    /// returns the identical selection, per the determinism contract).
    pub threads: usize,
    /// Run the independent post-solve auditor and fail the request on a
    /// dirty report.
    pub audit: bool,
    /// Optional power budget in milliwatts.
    pub power_budget_mw: Option<u64>,
}

impl Default for SolveSpec {
    fn default() -> SolveSpec {
        SolveSpec {
            problem: ProblemKind::Problem2,
            rg: 0,
            backend: Backend::BranchBound,
            max_nodes: None,
            deadline_ms: None,
            threads: 1,
            audit: false,
            power_budget_mw: None,
        }
    }
}

impl SolveSpec {
    /// Builds the [`SolveOptions`] for this spec at its own `rg`.
    #[must_use]
    pub fn to_options(&self) -> SolveOptions {
        self.to_options_at(self.rg)
    }

    /// Builds the [`SolveOptions`] for this spec at an explicit sweep
    /// point, overriding [`SolveSpec::rg`].
    #[must_use]
    pub fn to_options_at(&self, rg: u64) -> SolveOptions {
        let mut budget = SolveBudget::default().with_threads(self.threads);
        if let Some(n) = self.max_nodes {
            budget = budget.with_max_nodes(n);
        }
        if let Some(ms) = self.deadline_ms {
            budget = budget.with_deadline(std::time::Duration::from_millis(ms));
        }
        let mut options =
            SolveOptions::for_problem(self.problem, RequiredGains::uniform(Cycles(rg)))
                .backend(self.backend)
                .budget(budget)
                .audit(self.audit);
        if let Some(mw) = self.power_budget_mw {
            options = options.power_budget_mw(mw);
        }
        options
    }

    fn to_json(&self) -> String {
        let mut out = format!(
            "\"problem\":\"{}\",\"rg\":{},\"backend\":\"{}\",\"threads\":{},\"audit\":{}",
            self.problem.name(),
            self.rg,
            self.backend,
            self.threads,
            self.audit
        );
        if let Some(n) = self.max_nodes {
            out.push_str(&format!(",\"max_nodes\":{n}"));
        }
        if let Some(ms) = self.deadline_ms {
            out.push_str(&format!(",\"deadline_ms\":{ms}"));
        }
        if let Some(mw) = self.power_budget_mw {
            out.push_str(&format!(",\"power_budget_mw\":{mw}"));
        }
        out
    }

    fn parse(doc: &JsonValue) -> Result<SolveSpec, ApiError> {
        let mut spec = SolveSpec::default();
        if let Some(p) = doc.get("problem") {
            spec.problem = match p.as_str() {
                Some("problem1") => ProblemKind::Problem1,
                Some("problem2") => ProblemKind::Problem2,
                other => {
                    return Err(ApiError::InvalidParams(format!(
                        "problem must be \"problem1\" or \"problem2\", got {other:?}"
                    )))
                }
            };
        }
        if let Some(rg) = doc.get("rg") {
            spec.rg = rg.as_u64().ok_or_else(|| {
                ApiError::InvalidParams("rg must be a non-negative integer".into())
            })?;
        }
        if let Some(b) = doc.get("backend") {
            // Accept exactly the backends the engine enumerates, by their
            // canonical snake_case names — a backend added to
            // `Backend::ALL` is a wire value with no extra plumbing.
            let name = b.as_str();
            spec.backend = name
                .and_then(|n| Backend::ALL.into_iter().find(|k| k.name() == n))
                .ok_or_else(|| {
                    let allowed: Vec<&str> = Backend::ALL.iter().map(|k| k.name()).collect();
                    ApiError::InvalidParams(format!(
                        "backend must be one of {}, got {name:?}",
                        allowed.join("/")
                    ))
                })?;
        }
        if let Some(n) = doc.get("max_nodes") {
            let n = n
                .as_u64()
                .ok_or_else(|| ApiError::InvalidParams("max_nodes must be an integer".into()))?;
            spec.max_nodes = Some(n as usize);
        }
        if let Some(ms) = doc.get("deadline_ms") {
            let ms = ms
                .as_u64()
                .ok_or_else(|| ApiError::InvalidParams("deadline_ms must be an integer".into()))?;
            spec.deadline_ms = Some(ms);
        }
        if let Some(t) = doc.get("threads") {
            let t = t
                .as_u64()
                .ok_or_else(|| ApiError::InvalidParams("threads must be an integer".into()))?;
            spec.threads = (t as usize).max(1);
        }
        if let Some(a) = doc.get("audit") {
            spec.audit = a
                .as_bool()
                .ok_or_else(|| ApiError::InvalidParams("audit must be a boolean".into()))?;
        }
        if let Some(mw) = doc.get("power_budget_mw") {
            let mw = mw.as_u64().ok_or_else(|| {
                ApiError::InvalidParams("power_budget_mw must be an integer".into())
            })?;
            spec.power_budget_mw = Some(mw);
        }
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One job inside a [`RequestBody::Batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    /// Corpus-manifest instance id (e.g. `viterbi-0003`).
    pub instance: String,
    /// Solve parameters for this job.
    pub spec: SolveSpec,
}

/// The method-specific half of a [`Request`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RequestBody {
    /// Liveness probe; answers [`Payload::Pong`].
    Ping,
    /// Service counter snapshot; answers [`Payload::Stats`].
    Stats,
    /// Solve one instance at one required gain.
    Solve {
        /// Corpus-manifest instance id.
        instance: String,
        /// Solve parameters.
        spec: SolveSpec,
    },
    /// Solve one instance at each point of an RG sweep (served in
    /// descending-RG order internally, like [`crate::sweep::SweepSession`]).
    Sweep {
        /// Corpus-manifest instance id.
        instance: String,
        /// Solve parameters shared by every point.
        spec: SolveSpec,
        /// The required-gain points to visit.
        rgs: Vec<u64>,
    },
    /// Independent solve jobs answered together.
    Batch {
        /// The jobs; each succeeds or fails on its own.
        jobs: Vec<BatchItem>,
    },
    /// Walk an RG edit sequence through an incremental
    /// [`crate::delta::DeltaSession`] (RHS patch + basis repair per step).
    Delta {
        /// Corpus-manifest instance id.
        instance: String,
        /// Solve parameters for the base solve.
        spec: SolveSpec,
        /// The required-gain values applied as successive `SetRg` edits.
        rgs: Vec<u64>,
    },
}

impl RequestBody {
    /// The wire name of this method.
    #[must_use]
    pub fn method(&self) -> &'static str {
        match self {
            RequestBody::Ping => "ping",
            RequestBody::Stats => "stats",
            RequestBody::Solve { .. } => "solve",
            RequestBody::Sweep { .. } => "sweep",
            RequestBody::Batch { .. } => "batch",
            RequestBody::Delta { .. } => "delta",
        }
    }
}

/// A parsed request envelope. See the module docs for the wire shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Protocol version the caller speaks (must equal [`API_VERSION`]).
    pub api_version: u64,
    /// Caller-chosen request id, echoed back verbatim in the response.
    pub id: String,
    /// Tenant this request is accounted to.
    pub tenant: String,
    /// The method and its parameters.
    pub body: RequestBody,
}

impl Request {
    /// Parses one NDJSON request line.
    ///
    /// Unknown fields are ignored (the versioning policy); missing or
    /// mistyped required fields are [`ApiError::Malformed`], an unknown
    /// `method` is [`ApiError::UnknownMethod`], and a version mismatch is
    /// [`ApiError::UnsupportedVersion`].
    pub fn parse(line: &str) -> Result<Request, ApiError> {
        let doc = JsonValue::parse(line).map_err(|e| ApiError::Malformed(format!("{e:?}")))?;
        let version = doc
            .get("api_version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ApiError::Malformed("missing integer api_version".into()))?;
        if version != API_VERSION {
            return Err(ApiError::UnsupportedVersion { got: version });
        }
        let id = doc
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ApiError::Malformed("missing string id".into()))?
            .to_string();
        let tenant = doc
            .get("tenant")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ApiError::Malformed("missing string tenant".into()))?
            .to_string();
        if tenant.is_empty() {
            return Err(ApiError::Malformed("tenant must be non-empty".into()));
        }
        let method = doc
            .get("method")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ApiError::Malformed("missing string method".into()))?;
        let instance = || -> Result<String, ApiError> {
            Ok(doc
                .get("instance")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| ApiError::Malformed("missing string instance".into()))?
                .to_string())
        };
        let rgs = || -> Result<Vec<u64>, ApiError> {
            let arr = doc
                .get("rgs")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| ApiError::Malformed("missing rgs array".into()))?;
            let points = arr
                .iter()
                .map(|v| {
                    v.as_u64().ok_or_else(|| {
                        ApiError::InvalidParams("rgs entries must be integers".into())
                    })
                })
                .collect::<Result<Vec<u64>, ApiError>>()?;
            if points.is_empty() {
                return Err(ApiError::InvalidParams("rgs must be non-empty".into()));
            }
            Ok(points)
        };
        let body = match method {
            "ping" => RequestBody::Ping,
            "stats" => RequestBody::Stats,
            "solve" => RequestBody::Solve {
                instance: instance()?,
                spec: SolveSpec::parse(&doc)?,
            },
            "sweep" => RequestBody::Sweep {
                instance: instance()?,
                spec: SolveSpec::parse(&doc)?,
                rgs: rgs()?,
            },
            "delta" => RequestBody::Delta {
                instance: instance()?,
                spec: SolveSpec::parse(&doc)?,
                rgs: rgs()?,
            },
            "batch" => {
                let arr = doc
                    .get("jobs")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| ApiError::Malformed("missing jobs array".into()))?;
                if arr.is_empty() {
                    return Err(ApiError::InvalidParams("jobs must be non-empty".into()));
                }
                let jobs = arr
                    .iter()
                    .map(|job| {
                        let instance = job
                            .get("instance")
                            .and_then(JsonValue::as_str)
                            .ok_or_else(|| {
                                ApiError::Malformed("batch job missing string instance".into())
                            })?
                            .to_string();
                        Ok(BatchItem {
                            instance,
                            spec: SolveSpec::parse(job)?,
                        })
                    })
                    .collect::<Result<Vec<BatchItem>, ApiError>>()?;
                RequestBody::Batch { jobs }
            }
            other => return Err(ApiError::UnknownMethod(other.to_string())),
        };
        Ok(Request {
            api_version: version,
            id,
            tenant,
            body,
        })
    }

    /// Renders the envelope as one NDJSON line (the inverse of
    /// [`Request::parse`]; used to build scripted request logs).
    #[must_use]
    pub fn to_json(&self) -> String {
        let head = format!(
            "{{\"api_version\":{},\"id\":\"{}\",\"tenant\":\"{}\",\"method\":\"{}\"",
            self.api_version,
            json_escape(&self.id),
            json_escape(&self.tenant),
            self.body.method()
        );
        let tail = match &self.body {
            RequestBody::Ping | RequestBody::Stats => String::new(),
            RequestBody::Solve { instance, spec } => {
                format!(
                    ",\"instance\":\"{}\",{}",
                    json_escape(instance),
                    spec.to_json()
                )
            }
            RequestBody::Sweep {
                instance,
                spec,
                rgs,
            }
            | RequestBody::Delta {
                instance,
                spec,
                rgs,
            } => format!(
                ",\"instance\":\"{}\",{},\"rgs\":[{}]",
                json_escape(instance),
                spec.to_json(),
                rgs.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
            ),
            RequestBody::Batch { jobs } => {
                let rendered = jobs
                    .iter()
                    .map(|j| {
                        format!(
                            "{{\"instance\":\"{}\",{}}}",
                            json_escape(&j.instance),
                            j.spec.to_json()
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                format!(",\"jobs\":[{rendered}]")
            }
        };
        format!("{head}{tail}}}")
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The reproducible fingerprint text of a selection: chosen IMPs,
/// objective, totals, per-path gains and status — excluding the trace,
/// whose wall times and worker splits legitimately vary between runs.
///
/// Byte equality of these strings is the cross-layer determinism contract
/// (the same one the root integration gates assert); [`selection_digest`]
/// hashes it for compact wire transport.
#[must_use]
pub fn selection_fingerprint(sel: &Selection) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "objective={};area={};gain={};status={}\n",
        sel.objective,
        sel.total_area(),
        sel.total_gain().get(),
        sel.status
    ));
    for imp in sel.chosen() {
        out.push_str(&format!("{imp:?}\n"));
    }
    for (path, gain) in &sel.gain_per_path {
        out.push_str(&format!("{path:?}={}\n", gain.get()));
    }
    out
}

/// FNV-1a 64 digest of [`selection_fingerprint`]. Two selections with the
/// same digest are byte-identical under the determinism contract.
#[must_use]
pub fn selection_digest(sel: &Selection) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in selection_fingerprint(sel).bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One solved point inside a response payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The required gain this point was solved at.
    pub rg: u64,
    /// Total gain of the selection, in cycles.
    pub gain: u64,
    /// Total silicon area, in tenths of the paper's area unit.
    pub area_tenths: i64,
    /// Honest trust level of the answer (never upgraded by caching or
    /// degradation: a greedy answer says so).
    pub status: OptimalityStatus,
    /// Ids of the chosen IMPs, in selection order.
    pub chosen: Vec<u32>,
    /// [`selection_digest`] of the full selection.
    pub digest: u64,
    /// Branch-and-bound nodes the producing solve explored (a cache hit
    /// reports the producing solve's count).
    pub nodes: u64,
    /// Whether this point was answered from the shared canonical cache.
    pub cache_hit: bool,
    /// Whether admission control degraded this point to the greedy
    /// backend.
    pub degraded: bool,
    /// Wall time to answer this point, in microseconds (machine-varying;
    /// zeroed under [`Redaction::Timing`]).
    pub wall_us: u64,
}

impl SolveResult {
    /// Builds a result from a finished selection.
    #[must_use]
    pub fn from_selection(rg: u64, sel: &Selection) -> SolveResult {
        SolveResult {
            rg,
            gain: sel.total_gain().get(),
            area_tenths: sel.total_area().0,
            status: sel.status,
            chosen: sel.chosen().iter().map(|imp| imp.id.0).collect(),
            digest: selection_digest(sel),
            nodes: sel.trace.nodes_explored as u64,
            cache_hit: false,
            degraded: false,
            wall_us: 0,
        }
    }

    fn to_json(&self, redaction: Redaction) -> String {
        let wall = match redaction {
            Redaction::None => self.wall_us,
            _ => 0,
        };
        format!(
            "{{\"rg\":{},\"gain\":{},\"area_tenths\":{},\"status\":\"{}\",\"chosen\":[{}],\
             \"digest\":{},\"nodes\":{},\"cache_hit\":{},\"degraded\":{},\"wall_us\":{}}}",
            self.rg,
            self.gain,
            self.area_tenths,
            self.status,
            self.chosen
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(","),
            self.digest,
            self.nodes,
            self.cache_hit,
            self.degraded,
            wall
        )
    }
}

/// A service counter snapshot ([`RequestBody::Stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests answered (ok or error) since start.
    pub served: u64,
    /// Points answered from the shared canonical cache.
    pub cache_hits: u64,
    /// Points degraded to the greedy backend by admission control.
    pub degraded: u64,
    /// Requests refused outright by admission control.
    pub rejected: u64,
    /// Live entries across every cache shard.
    pub cache_entries: u64,
}

impl StatsSnapshot {
    fn to_json(self) -> String {
        format!(
            "{{\"served\":{},\"cache_hits\":{},\"degraded\":{},\"rejected\":{},\"cache_entries\":{}}}",
            self.served, self.cache_hits, self.degraded, self.rejected, self.cache_entries
        )
    }
}

/// The method-specific half of a [`Response`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Payload {
    /// Answer to [`RequestBody::Ping`].
    Pong,
    /// Answer to [`RequestBody::Stats`].
    Stats(StatsSnapshot),
    /// Answer to [`RequestBody::Solve`].
    Solve(SolveResult),
    /// Answer to [`RequestBody::Sweep`] / [`RequestBody::Delta`], in the
    /// caller's requested point order.
    Points(Vec<SolveResult>),
    /// Answer to [`RequestBody::Batch`], in job order; each job succeeds
    /// or fails on its own.
    Batch(Vec<Result<SolveResult, ApiError>>),
}

/// A response envelope: the echoed ids plus either a payload or an
/// [`ApiError`].
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id (empty when the request was too malformed
    /// to carry one).
    pub id: String,
    /// Echo of the tenant id.
    pub tenant: String,
    /// The outcome.
    pub result: Result<Payload, ApiError>,
}

impl Response {
    /// Wraps an error into a full envelope.
    #[must_use]
    pub fn error(id: &str, tenant: &str, err: ApiError) -> Response {
        Response {
            id: id.to_string(),
            tenant: tenant.to_string(),
            result: Err(err),
        }
    }

    /// Renders the envelope as one NDJSON line. [`Redaction::Timing`] (or
    /// stronger) zeroes the machine-varying `wall_us` fields, which is
    /// what makes scripted-replay goldens byte-stable across hosts.
    #[must_use]
    pub fn to_json(&self, redaction: Redaction) -> String {
        let head = format!(
            "{{\"api_version\":{API_VERSION},\"id\":\"{}\",\"tenant\":\"{}\"",
            json_escape(&self.id),
            json_escape(&self.tenant)
        );
        match &self.result {
            Ok(payload) => {
                let body = match payload {
                    Payload::Pong => "\"pong\":true".to_string(),
                    Payload::Stats(s) => format!("\"stats\":{}", s.to_json()),
                    Payload::Solve(r) => format!("\"result\":{}", r.to_json(redaction)),
                    Payload::Points(points) => format!(
                        "\"results\":[{}]",
                        points
                            .iter()
                            .map(|p| p.to_json(redaction))
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                    Payload::Batch(jobs) => format!(
                        "\"results\":[{}]",
                        jobs.iter()
                            .map(|j| match j {
                                Ok(r) =>
                                    format!("{{\"ok\":true,\"result\":{}}}", r.to_json(redaction)),
                                Err(e) => format!("{{\"ok\":false,\"error\":{}}}", e.to_json()),
                            })
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                };
                format!("{head},\"ok\":true,{body}}}")
            }
            Err(e) => format!("{head},\"ok\":false,\"error\":{}}}", e.to_json()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request {
            api_version: API_VERSION,
            id: "r-1".into(),
            tenant: "alice".into(),
            body: RequestBody::Sweep {
                instance: "viterbi-0003".into(),
                spec: SolveSpec {
                    rg: 900,
                    audit: true,
                    max_nodes: Some(50_000),
                    ..SolveSpec::default()
                },
                rgs: vec![1200, 900, 600],
            },
        };
        let line = req.to_json();
        let parsed = Request::parse(&line).expect("round-trip parses");
        assert_eq!(parsed, req);
        assert_eq!(parsed.to_json(), line);
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let line = r#"{"api_version":1,"id":"x","tenant":"t","method":"ping","future_field":42}"#;
        let req = Request::parse(line).expect("unknown fields tolerated");
        assert_eq!(req.body, RequestBody::Ping);
    }

    #[test]
    fn version_mismatch_is_code_101() {
        let line = r#"{"api_version":99,"id":"x","tenant":"t","method":"ping"}"#;
        let err = Request::parse(line).unwrap_err();
        assert_eq!(err.code(), 101);
        assert!(matches!(err, ApiError::UnsupportedVersion { got: 99 }));
    }

    #[test]
    fn error_codes_are_stable() {
        let cases: Vec<(ApiError, u32, &str)> = vec![
            (ApiError::Malformed("x".into()), 100, "malformed_request"),
            (
                ApiError::UnsupportedVersion { got: 2 },
                101,
                "unsupported_version",
            ),
            (ApiError::UnknownMethod("x".into()), 102, "unknown_method"),
            (
                ApiError::UnknownInstance("x".into()),
                103,
                "unknown_instance",
            ),
            (ApiError::InvalidParams("x".into()), 104, "invalid_params"),
            (
                ApiError::Core(CoreError::Infeasible { path: None }),
                200,
                "infeasible",
            ),
            (
                ApiError::Core(CoreError::BudgetExhausted),
                201,
                "budget_exhausted",
            ),
            (ApiError::Core(CoreError::NoImps), 203, "no_imps"),
            (ApiError::Workload("x".into()), 300, "workload"),
            (
                ApiError::Overloaded {
                    tenant: "t".into(),
                    detail: "x".into(),
                },
                429,
                "overloaded",
            ),
            (ApiError::Internal("x".into()), 500, "internal"),
        ];
        for (err, code, kind) in cases {
            assert_eq!(err.code(), code, "{err}");
            assert_eq!(err.kind(), kind, "{err}");
            let json = err.to_json();
            assert!(json.starts_with(&format!("{{\"code\":{code},")), "{json}");
        }
    }

    #[test]
    fn solve_spec_maps_onto_options() {
        let spec = SolveSpec {
            problem: ProblemKind::Problem1,
            rg: 700,
            backend: Backend::Greedy,
            max_nodes: Some(123),
            deadline_ms: Some(250),
            threads: 4,
            audit: true,
            power_budget_mw: Some(900),
        };
        let opts = spec.to_options();
        assert_eq!(opts.problem(), ProblemKind::Problem1);
        assert_eq!(opts.gains().as_uniform(), Some(Cycles(700)));
        assert_eq!(opts.solver_backend(), Backend::Greedy);
        assert_eq!(opts.solve_budget().max_nodes, 123);
        assert_eq!(
            opts.solve_budget().deadline,
            Some(std::time::Duration::from_millis(250))
        );
        assert_eq!(opts.solve_budget().threads, 4);
        assert!(opts.audit_enabled());
        assert_eq!(opts.power_budget(), Some(900));
        let at = spec.to_options_at(300);
        assert_eq!(at.gains().as_uniform(), Some(Cycles(300)));
    }

    #[test]
    fn response_redaction_zeroes_wall() {
        let result = SolveResult {
            rg: 100,
            gain: 150,
            area_tenths: 42,
            status: OptimalityStatus::Optimal,
            chosen: vec![1, 3],
            digest: 7,
            nodes: 5,
            cache_hit: true,
            degraded: false,
            wall_us: 999,
        };
        let resp = Response {
            id: "r".into(),
            tenant: "t".into(),
            result: Ok(Payload::Solve(result)),
        };
        let full = resp.to_json(Redaction::None);
        let redacted = resp.to_json(Redaction::Timing);
        assert!(full.contains("\"wall_us\":999"), "{full}");
        assert!(redacted.contains("\"wall_us\":0"), "{redacted}");
        assert!(redacted.contains("\"cache_hit\":true"));
    }
}
