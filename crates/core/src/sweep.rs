//! Sweep/batch orchestration: canonical-instance solve caching and
//! cross-RG warm-start chaining.
//!
//! The paper's headline experiments (Tables 1–3, Figs 8–11) are RG
//! *sweeps*: the same instance solved at many required-gain points. Driving
//! each point as a cold, independent [`crate::Solver::solve`] call rebuilds
//! the ILP model and restarts branch-and-bound from scratch every time. A
//! [`SweepSession`] removes both redundancies:
//!
//! * **Canonical-instance caching.** Every request is canonicalized into a
//!   stable content key over the instance *structure* (s-calls, library,
//!   paths, area model — everything except the display name) plus the IMP
//!   database and the solve configuration. Built models and returned
//!   [`Selection`]s are memoized in bounded LRU caches, so duplicate or
//!   isomorphic requests hit the cache and return byte-identical results.
//! * **Descending-RG warm-start chaining.** A uniform-gain sweep has
//!   monotone structure: a selection feasible at gain `r` is feasible at
//!   every `r' < r` (it achieves at least `r` on every path). So
//!   [`SweepSession::sweep`] solves points in descending-RG order and
//!   chains each point's optimum into the next point's branch-and-bound as
//!   a warm-start incumbent via [`crate::SolveOptions::warm_start_hint`].
//!   Seeding only tightens pruning — the lexicographic tie-break still
//!   picks the same optimum — so every chained selection is identical to
//!   its cold-solve counterpart (for solves that finish within budget; a
//!   budget-exhausted incumbent is exempt, exactly as for thread counts).
//! * **Batched fan-out.** [`SweepSession::solve_batch`] fans independent
//!   (instance, options) jobs across a scoped worker pool with per-job
//!   budgets, sharing both caches across the batch.
//!
//! All of it is observable: the session accumulates a [`SweepTrace`] with
//! cache hits/misses, chained-incumbent accepts, per-point node counts and
//! wall times, rendered as JSON lines for scraping.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use partita_mop::Cycles;

use crate::cache::LruCache;
use crate::formulate::{build_model, VarMap};
use crate::solver::solve_prepared;
use crate::telemetry::{CacheKind, Event, TelemetrySink};
use crate::{CoreError, ImpDb, Instance, RequiredGains, Selection, SolveOptions, SolveTrace};

/// A formulated model kept by the model cache, with the wall time it
/// originally took to build (charged to every solve that reuses it, so
/// cached traces stay honest about formulation cost).
#[derive(Debug)]
struct PreparedModel {
    model: partita_ilp::Model,
    map: VarMap,
    formulation: Duration,
}

/// One solve job for [`SweepSession::solve_batch`].
#[derive(Debug, Clone)]
pub struct BatchJob<'a> {
    /// The problem instance.
    pub instance: &'a Instance,
    /// Its IMP database.
    pub db: &'a ImpDb,
    /// Solve configuration (carries its own per-job budget).
    pub options: SolveOptions,
}

/// Telemetry of one sweep point or batch job run through a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// FNV-1a 64 digest of the canonical solve key (telemetry only — cache
    /// lookups compare full keys, never digests).
    pub digest: u64,
    /// The uniform required gain, when the point's gains are uniform.
    pub rg: Option<Cycles>,
    /// Whether the solve cache answered without running a solver.
    pub cache_hit: bool,
    /// Whether a chained warm-start incumbent was injected.
    pub chained: bool,
    /// Branch-and-bound nodes explored (0 on a cache hit — no new search).
    pub nodes_explored: usize,
    /// Wall time of this point, cache lookups included.
    pub wall: Duration,
}

/// Aggregated telemetry of a [`SweepSession`]: totals plus one
/// [`SweepPoint`] per request, in request order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepTrace {
    /// Requests answered from the solve cache.
    pub cache_hits: u64,
    /// Requests that had to run a solver.
    pub cache_misses: u64,
    /// Solver runs that reused a cached model.
    pub model_hits: u64,
    /// Solver runs that built their model.
    pub model_misses: u64,
    /// Sweep points that were seeded with the previous (higher-RG) point's
    /// verified-feasible optimum.
    pub chained_accepts: u64,
    /// Sweep points whose carry-over candidate failed the independent
    /// feasibility check and was dropped (e.g. under a non-uniform base or
    /// a budget-exhausted predecessor).
    pub chained_rejects: u64,
    /// Per-request telemetry, in request order.
    pub points: Vec<SweepPoint>,
}

impl SweepTrace {
    /// Total branch-and-bound nodes explored across all recorded points
    /// (cache hits contribute 0).
    #[must_use]
    pub fn total_nodes(&self) -> u64 {
        self.points.iter().map(|p| p.nodes_explored as u64).sum()
    }

    /// Total wall time across all recorded points.
    #[must_use]
    pub fn total_wall(&self) -> Duration {
        self.points.iter().map(|p| p.wall).sum()
    }

    /// Renders the aggregate counters as one schema-tagged
    /// [`Event::SweepSummary`] JSON object labelled `label`.
    #[must_use]
    pub fn to_json(&self, label: &str) -> String {
        Event::SweepSummary {
            sweep: label.to_string(),
            points: self.points.len(),
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            model_hits: self.model_hits,
            model_misses: self.model_misses,
            chained_accepts: self.chained_accepts,
            chained_rejects: self.chained_rejects,
            nodes: self.total_nodes(),
            wall: self.total_wall(),
        }
        .to_json()
    }

    /// Renders one [`Event::SweepPoint`] JSON line per recorded point
    /// (with `sweep`/`point` filled in retrospectively), followed by the
    /// [`SweepTrace::to_json`] summary line.
    #[must_use]
    pub fn json_lines(&self, label: &str) -> Vec<String> {
        let mut lines: Vec<String> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Event::SweepPoint {
                    sweep: Some(label.to_string()),
                    point: Some(i),
                    digest: p.digest,
                    rg: p.rg.map(partita_mop::Cycles::get),
                    cache_hit: p.cache_hit,
                    chained: p.chained,
                    nodes: p.nodes_explored,
                    wall: p.wall,
                }
                .to_json()
            })
            .collect();
        lines.push(self.to_json(label));
        lines
    }

    /// Renders a cold-vs-chained comparison as one schema-tagged
    /// [`Event::SweepCompare`] JSON object: total nodes and wall time of
    /// both traces plus the nodes saved by chaining (negative if chaining
    /// somehow cost nodes).
    #[must_use]
    pub fn compare_json(label: &str, cold: &SweepTrace, chained: &SweepTrace) -> String {
        Event::SweepCompare {
            sweep: label.to_string(),
            cold_nodes: cold.total_nodes(),
            chained_nodes: chained.total_nodes(),
            nodes_saved: nodes_saved_clamped(cold.total_nodes(), chained.total_nodes()),
            chained_accepts: chained.chained_accepts,
            cold_wall: cold.total_wall(),
            chained_wall: chained.total_wall(),
        }
        .to_json()
    }
}

/// `cold - chained` as a saturating `i64`: node totals are `u64`, so the
/// naive `as i64` difference wraps once either total passes `i64::MAX` —
/// reachable on x100-scale sweeps. Computing in `i128` and clamping keeps
/// the sign honest at every magnitude.
fn nodes_saved_clamped(cold: u64, chained: u64) -> i64 {
    let saved = i128::from(cold) - i128::from(chained);
    saved.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64
}

/// FNV-1a 64-bit digest, reported in telemetry so sweep points can be
/// correlated across runs without dumping full canonical keys.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical content key of an instance + IMP database: every structural
/// field, *excluding* the instance's display name, so isomorphic instances
/// (same structure, different name) share cache entries. The `Debug`
/// renderings of the constituent types are deterministic (plain data,
/// `BTreeMap`-backed where ordered iteration matters).
fn instance_key(instance: &Instance, db: &ImpDb) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        instance.scalls, instance.library, instance.paths, instance.area_model, db
    )
}

/// Model-cache key: the instance key plus everything that shapes the
/// formulation.
fn model_key(ikey: &str, options: &SolveOptions) -> String {
    format!(
        "{ikey}|{:?}|{:?}|{:?}",
        options.problem, options.gains, options.power_budget_mw
    )
}

/// Solve-cache key: the model key plus everything that can change the
/// returned selection *or its trace* (backend, budget incl. threads, seeds).
///
/// Deliberately excluded: `audit` (checking an answer must never change
/// *what* is solved) and `root_basis` (basis repair only changes how fast
/// the identical lex-min optimum is reached — keying on it would defeat the
/// cache across chained sweeps).
fn solve_key(ikey: &str, options: &SolveOptions) -> String {
    format!(
        "{}|{:?}|{:?}|{:?}|{:?}",
        model_key(ikey, options),
        options.backend,
        options.budget,
        options.warm_start,
        options.hint
    )
}

/// Public form of the canonical instance + IMP-database content key: every
/// structural field, *excluding* the instance's display name, so isomorphic
/// instances (same structure, different name — e.g. the same corpus entry
/// built for two different tenants) produce byte-identical keys and share
/// cache entries.
///
/// Keys are full canonical strings, never hashes: equality of keys is
/// equality of problems, so a cache hit can never be a collision.
#[must_use]
pub fn canonical_instance_key(instance: &Instance, db: &ImpDb) -> String {
    instance_key(instance, db)
}

/// The canonical *service-grade* solve key: the instance content key plus
/// everything that can change **which selection is returned** — problem
/// kind, required gains, power budget, backend and budget (node cap,
/// deadline, fallback, threads).
///
/// Deliberately excluded, and guaranteed excluded by test: the `audit`
/// flag (checking an answer never changes it), any retained root **basis**
/// (repair only accelerates reaching the identical lex-min optimum) and
/// any warm-start **hint** (verified seeds only prune; strict pruning and
/// the lexicographic tie-break make the returned selection hint-invariant
/// — the PR 2/PR 6 determinism contract). This is what lets the solve
/// daemon share one cache entry across tenants whose requests differ only
/// in those effort knobs.
///
/// (The sweep session's private key additionally folds the hint in,
/// because session traces must distinguish chained points from cold ones;
/// selections never differ, traces do.)
#[must_use]
pub fn canonical_solve_key(instance: &Instance, db: &ImpDb, options: &SolveOptions) -> String {
    format!(
        "{}|{:?}|{:?}",
        model_key(&instance_key(instance, db), options),
        options.backend,
        options.budget,
    )
}

/// A caching, chaining, batching solve session.
///
/// See the module docs for the design; the short version:
///
/// ```
/// use partita_core::{sweep::SweepSession, ImpDb, Instance, RequiredGains,
///     SCall, SolveOptions};
/// use partita_ip::{IpBlock, IpFunction};
/// use partita_interface::TransferJob;
/// use partita_mop::{AreaTenths, Cycles};
///
/// # fn main() -> Result<(), partita_core::CoreError> {
/// let mut instance = Instance::new("demo");
/// instance.library.add(
///     IpBlock::builder("fir16").function(IpFunction::Fir)
///         .rates(4, 4).latency(8)
///         .area(AreaTenths::from_units(3)).build(),
/// );
/// let sc = instance.add_scall(
///     SCall::new("fir", IpFunction::Fir, Cycles(4000), TransferJob::new(160, 160)),
/// );
/// instance.add_path(vec![sc]);
/// let db = ImpDb::generate(&instance);
///
/// let mut session = SweepSession::new();
/// let base = SolveOptions::default();
/// let sweep = session.sweep(&instance, &db, &base, &[Cycles(500), Cycles(1000)])?;
/// assert_eq!(sweep.len(), 2);
/// // Re-running the same sweep is answered entirely from the cache.
/// let again = session.sweep(&instance, &db, &base, &[Cycles(500), Cycles(1000)])?;
/// assert_eq!(sweep, again);
/// assert!(session.trace().cache_hits >= 2);
/// # Ok(())
/// # }
/// ```
pub struct SweepSession {
    models: LruCache<Arc<PreparedModel>>,
    solves: LruCache<Selection>,
    trace: SweepTrace,
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl std::fmt::Debug for SweepSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepSession")
            .field("models", &self.models)
            .field("solves", &self.solves)
            .field("trace", &self.trace)
            .field("sink", &self.sink.as_ref().map(|_| "dyn TelemetrySink"))
            .finish()
    }
}

impl Default for SweepSession {
    fn default() -> Self {
        SweepSession::new()
    }
}

impl SweepSession {
    /// Default cache bounds: 32 formulated models, 256 memoized selections.
    #[must_use]
    pub fn new() -> SweepSession {
        SweepSession::with_capacities(32, 256)
    }

    /// A session with explicit cache bounds.
    ///
    /// # Invariants
    ///
    /// * Each bound is clamped to at least 1 — a session always caches
    ///   *something*, so `with_capacities(0, 0)` cannot disable memoization
    ///   (construct a fresh session per solve for that).
    /// * Eviction is least-recently-used; a hit refreshes the entry. The
    ///   bounds cap *entry counts*, not bytes — a formulated model for a
    ///   large instance dwarfs a memoized [`Selection`], which is why the
    ///   default model bound (32) is far below the solve bound (256).
    ///
    /// # Examples
    ///
    /// ```
    /// use partita_core::sweep::SweepSession;
    ///
    /// let session = SweepSession::with_capacities(0, 8);
    /// // The zero model bound was clamped; both caches start empty.
    /// assert_eq!(session.cached_models(), 0);
    /// assert_eq!(session.cached_solves(), 0);
    /// ```
    #[must_use]
    pub fn with_capacities(models: usize, solves: usize) -> SweepSession {
        SweepSession {
            models: LruCache::new(models),
            solves: LruCache::new(solves),
            trace: SweepTrace::default(),
            sink: None,
        }
    }

    /// Routes this session's live telemetry ([`Event::CacheLookup`],
    /// [`Event::ChainDecision`], [`Event::SweepPoint`],
    /// [`Event::BatchStarted`]) — and the inner solves it dispatches —
    /// to `sink` instead of the process-wide [`crate::telemetry::global`]
    /// sink.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> SweepSession {
        self.sink = Some(sink);
        self
    }

    /// The sink live events go to: the explicit one, else the global one.
    fn sink(&self) -> &dyn TelemetrySink {
        crate::telemetry::resolve(self.sink.as_ref())
    }

    /// Emits a [`Event::CacheLookup`] for a probe of `cache` keyed by `key`.
    fn emit_cache(&self, cache: CacheKind, hit: bool, key: &str) {
        let sink = self.sink();
        if sink.enabled() {
            sink.emit(&Event::CacheLookup {
                cache,
                hit,
                digest: fnv1a64(key),
            });
        }
    }

    /// Emits the live [`Event::SweepPoint`] for a just-recorded point
    /// (`sweep`/`point` stay `None` — live streams have no label; the
    /// retrospective [`SweepTrace::json_lines`] renderer fills them in).
    fn emit_point(&self, p: &SweepPoint) {
        let sink = self.sink();
        if sink.enabled() {
            sink.emit(&Event::SweepPoint {
                sweep: None,
                point: None,
                digest: p.digest,
                rg: p.rg.map(Cycles::get),
                cache_hit: p.cache_hit,
                chained: p.chained,
                nodes: p.nodes_explored,
                wall: p.wall,
            });
        }
    }

    /// Telemetry accumulated since construction (or the last
    /// [`SweepSession::take_trace`]).
    #[must_use]
    pub fn trace(&self) -> &SweepTrace {
        &self.trace
    }

    /// Drains and returns the accumulated telemetry, resetting it — lets a
    /// driver emit one trace per phase (e.g. cold sweep vs. chained sweep)
    /// from a single session.
    pub fn take_trace(&mut self) -> SweepTrace {
        std::mem::take(&mut self.trace)
    }

    /// Number of memoized selections currently held.
    #[must_use]
    pub fn cached_solves(&self) -> usize {
        self.solves.len()
    }

    /// Number of formulated models currently held.
    #[must_use]
    pub fn cached_models(&self) -> usize {
        self.models.len()
    }

    /// Bound on memoized selections.
    #[must_use]
    pub fn solve_capacity(&self) -> usize {
        self.solves.capacity()
    }

    /// Bound on cached models.
    #[must_use]
    pub fn model_capacity(&self) -> usize {
        self.models.capacity()
    }

    /// A single cache-aware solve: answers from the solve cache when the
    /// canonical key matches a memoized request (byte-identical
    /// [`Selection`], trace included), otherwise formulates (or reuses) the
    /// model and dispatches like [`crate::Solver::solve`].
    ///
    /// # Errors
    ///
    /// Exactly those of [`crate::Solver::solve`]; errors are not cached.
    pub fn solve(
        &mut self,
        instance: &Instance,
        db: &ImpDb,
        options: &SolveOptions,
    ) -> Result<Selection, CoreError> {
        self.solve_point(instance, db, options, false)
            .map(|(sel, _basis)| sel)
    }

    /// Runs a uniform-gain RG sweep with descending-RG warm-start chaining:
    /// points are solved from the highest requirement down, each optimum
    /// seeding the next point's branch-and-bound (after an independent
    /// feasibility check), and the selections are returned in the order of
    /// `rgs`. `base` supplies everything except the gains, which are
    /// overridden per point.
    ///
    /// Chaining never changes a within-budget selection — see the module
    /// docs — so the result is identical to [`SweepSession::sweep_cold`]
    /// point for point, only cheaper.
    ///
    /// # Errors
    ///
    /// The first point error, in descending-RG solve order.
    pub fn sweep(
        &mut self,
        instance: &Instance,
        db: &ImpDb,
        base: &SolveOptions,
        rgs: &[Cycles],
    ) -> Result<Vec<Selection>, CoreError> {
        self.sweep_impl(instance, db, base, rgs, true)
    }

    /// The uncached-structure baseline for [`SweepSession::sweep`]: the same
    /// sweep points solved independently, with no cross-point chaining (the
    /// solve and model caches still apply — a repeated point still hits).
    ///
    /// # Errors
    ///
    /// The first point error, in descending-RG solve order.
    pub fn sweep_cold(
        &mut self,
        instance: &Instance,
        db: &ImpDb,
        base: &SolveOptions,
        rgs: &[Cycles],
    ) -> Result<Vec<Selection>, CoreError> {
        self.sweep_impl(instance, db, base, rgs, false)
    }

    fn sweep_impl(
        &mut self,
        instance: &Instance,
        db: &ImpDb,
        base: &SolveOptions,
        rgs: &[Cycles],
        chain: bool,
    ) -> Result<Vec<Selection>, CoreError> {
        let mut order: Vec<usize> = (0..rgs.len()).collect();
        order.sort_by(|&a, &b| rgs[b].cmp(&rgs[a]));
        let mut results: Vec<Option<Selection>> = vec![None; rgs.len()];
        let mut prev: Option<Selection> = None;
        let mut prev_basis: Option<Arc<partita_ilp::Basis>> = None;
        for &i in &order {
            let mut opts = base.clone();
            opts.gains = RequiredGains::uniform(rgs[i]);
            opts.hint = None;
            opts.root_basis = None;
            let mut chained = false;
            if chain {
                if let Some(prev_sel) = &prev {
                    // The monotone-sweep argument says the higher-RG optimum
                    // is feasible here; verify independently anyway so a
                    // non-uniform base or a heuristic previous point can
                    // never inject a bogus incumbent.
                    if prev_sel.verify(instance, &opts).is_ok() {
                        opts.hint = Some(prev_sel.chosen().iter().map(|imp| imp.id).collect());
                        chained = true;
                        self.trace.chained_accepts += 1;
                    } else {
                        self.trace.chained_rejects += 1;
                    }
                    // The retained root basis rides along even when the
                    // incumbent was rejected: an RG edit is a pure RHS
                    // change, so the previous optimal basis stays
                    // dual-feasible, and the warm path falls back to a cold
                    // factorization on any mismatch anyway.
                    opts.root_basis = prev_basis.clone();
                    let sink = self.sink();
                    if sink.enabled() {
                        sink.emit(&Event::ChainDecision {
                            rg: Some(rgs[i].get()),
                            accepted: chained,
                        });
                    }
                }
            }
            let (sel, basis) = self.solve_point(instance, db, &opts, chained)?;
            if basis.is_some() {
                prev_basis = basis;
            }
            prev = Some(sel.clone());
            results[i] = Some(sel);
        }
        Ok(results
            .into_iter()
            .map(|s| s.expect("every sweep index solved exactly once"))
            .collect())
    }

    /// Fans independent jobs across `pool_threads` scoped workers, sharing
    /// this session's caches: cached jobs are answered up front, the misses
    /// are solved concurrently (each under its own
    /// [`crate::SolveOptions::solve_budget`]), and every result lands in
    /// the cache for the next batch. Results come back in job order,
    /// per-job errors in place.
    pub fn solve_batch(
        &mut self,
        jobs: &[BatchJob<'_>],
        pool_threads: usize,
    ) -> Vec<Result<Selection, CoreError>> {
        let pool_threads = pool_threads.max(1);
        let mut out: Vec<Option<Result<Selection, CoreError>>> =
            (0..jobs.len()).map(|_| None).collect();

        // Phase 1 (serial): probe the solve cache, prepare models for the
        // misses. Keeping cache mutation on one thread keeps the LRU simple.
        struct Pending {
            job: usize,
            skey: String,
            digest: u64,
            prepared: Arc<PreparedModel>,
            model_hit: bool,
        }
        let mut pending: Vec<Pending> = Vec::new();
        // Canonically identical jobs within one batch collapse to a single
        // solve; the duplicates ride along as followers and are answered
        // with the exact same Selection (so a duplicate can never diverge
        // from its twin by trace timing).
        let mut by_key: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let mut followers: Vec<(usize, usize)> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            let started = Instant::now();
            let ikey = instance_key(job.instance, job.db);
            let skey = solve_key(&ikey, &job.options);
            let digest = fnv1a64(&skey);
            if let Some(sel) = self.solves.get(&skey) {
                let sel = sel.clone();
                self.trace.cache_hits += 1;
                self.emit_cache(CacheKind::Solve, true, &skey);
                let point = SweepPoint {
                    digest,
                    rg: job.options.gains.as_uniform(),
                    cache_hit: true,
                    chained: false,
                    nodes_explored: 0,
                    wall: started.elapsed(),
                };
                self.emit_point(&point);
                self.trace.points.push(point);
                // The audit flag is not part of the cache key, so a hit must
                // run its own audit when this job asked for one.
                out[i] = Some(audit_cached(job.instance, job.db, &job.options, sel));
                continue;
            }
            self.emit_cache(CacheKind::Solve, false, &skey);
            if let Some(&twin) = by_key.get(&skey) {
                self.trace.cache_hits += 1;
                let point = SweepPoint {
                    digest,
                    rg: job.options.gains.as_uniform(),
                    cache_hit: true,
                    chained: false,
                    nodes_explored: 0,
                    wall: started.elapsed(),
                };
                self.emit_point(&point);
                self.trace.points.push(point);
                followers.push((i, twin));
                continue;
            }
            match self.prepared_model(job.instance, job.db, &job.options, &ikey) {
                Ok((prepared, model_hit)) => {
                    by_key.insert(skey.clone(), pending.len());
                    pending.push(Pending {
                        job: i,
                        skey,
                        digest,
                        prepared,
                        model_hit,
                    });
                }
                Err(e) => {
                    self.trace.cache_misses += 1;
                    out[i] = Some(Err(e));
                }
            }
        }

        let sink = self.sink();
        if sink.enabled() {
            sink.emit(&Event::BatchStarted {
                jobs: jobs.len(),
                unique: pending.len(),
                followers: followers.len(),
                pool_threads,
            });
        }

        // Phase 2 (parallel): solve the misses. Workers pull jobs off a
        // shared counter — the work-stealing is at job granularity; each
        // job's own branch-and-bound may still run its internal pool.
        // Workers share the session sink: every solve's events land in one
        // stream, each JSON line written atomically by the sink.
        type Outcome = (Result<Selection, CoreError>, Duration);
        let next = AtomicUsize::new(0);
        let solved: Mutex<Vec<Option<Outcome>>> =
            Mutex::new((0..pending.len()).map(|_| None).collect());
        let run_one = |p: &Pending| {
            let started = Instant::now();
            let job = &jobs[p.job];
            let trace = SolveTrace {
                formulation: p.prepared.formulation,
                ..SolveTrace::default()
            };
            // Batch jobs are independent — the returned root basis has no
            // next point to seed, so it is dropped here.
            let result = solve_prepared(
                job.instance,
                job.db,
                &p.prepared.model,
                &p.prepared.map,
                &job.options,
                trace,
                sink,
            )
            .map(|(sel, _basis)| sel);
            (result, started.elapsed())
        };
        if pool_threads == 1 || pending.len() <= 1 {
            let mut solved = solved.lock().expect("batch results lock");
            for (k, p) in pending.iter().enumerate() {
                solved[k] = Some(run_one(p));
            }
        } else {
            std::thread::scope(|s| {
                for _ in 0..pool_threads.min(pending.len()) {
                    s.spawn(|| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some(p) = pending.get(k) else { return };
                        let outcome = run_one(p);
                        solved.lock().expect("batch results lock")[k] = Some(outcome);
                    });
                }
            });
        }

        // Phase 3 (serial): record telemetry, memoize, fill the output.
        let solved = solved.into_inner().expect("batch results lock");
        let mut resolved: Vec<Result<Selection, CoreError>> = Vec::with_capacity(pending.len());
        for (p, outcome) in pending.iter().zip(solved) {
            let (result, wall) = outcome.expect("every pending job solved");
            self.trace.cache_misses += 1;
            if p.model_hit {
                self.trace.model_hits += 1;
            } else {
                self.trace.model_misses += 1;
            }
            let nodes = result
                .as_ref()
                .map(|sel| sel.trace.nodes_explored)
                .unwrap_or(0);
            let point = SweepPoint {
                digest: p.digest,
                rg: jobs[p.job].options.gains.as_uniform(),
                cache_hit: false,
                chained: false,
                nodes_explored: nodes,
                wall,
            };
            self.emit_point(&point);
            self.trace.points.push(point);
            if let Ok(sel) = &result {
                self.solves.insert(p.skey.clone(), sel.clone());
            }
            resolved.push(result);
        }
        for (job, twin) in followers {
            let r = match resolved[twin].clone() {
                Ok(sel) => audit_cached(jobs[job].instance, jobs[job].db, &jobs[job].options, sel),
                err => err,
            };
            out[job] = Some(r);
        }
        for (p, result) in pending.iter().zip(resolved) {
            out[p.job] = Some(result);
        }

        out.into_iter()
            .map(|r| r.expect("every job answered"))
            .collect()
    }

    /// Fetches the formulated model for (instance, options) from the model
    /// cache, building and memoizing it on a miss. Returns the model and
    /// whether it was a hit.
    fn prepared_model(
        &mut self,
        instance: &Instance,
        db: &ImpDb,
        options: &SolveOptions,
        ikey: &str,
    ) -> Result<(Arc<PreparedModel>, bool), CoreError> {
        let mkey = model_key(ikey, options);
        if let Some(m) = self.models.get(&mkey) {
            let m = Arc::clone(m);
            self.emit_cache(CacheKind::Model, true, &mkey);
            return Ok((m, true));
        }
        self.emit_cache(CacheKind::Model, false, &mkey);
        let t = Instant::now();
        let (model, map) = build_model(
            instance,
            db,
            options.problem,
            &options.gains,
            options.power_budget_mw,
        )?;
        let prepared = Arc::new(PreparedModel {
            model,
            map,
            formulation: t.elapsed(),
        });
        self.models.insert(mkey, Arc::clone(&prepared));
        Ok((prepared, false))
    }

    /// The single-request path shared by [`SweepSession::solve`] and the
    /// sweep loop. Alongside the selection it returns the branch-and-bound
    /// root basis (when the backend produced one and the answer was not
    /// served from cache), so the sweep loop can seed the next point's LP
    /// relaxation.
    fn solve_point(
        &mut self,
        instance: &Instance,
        db: &ImpDb,
        options: &SolveOptions,
        chained: bool,
    ) -> Result<(Selection, Option<Arc<partita_ilp::Basis>>), CoreError> {
        let started = Instant::now();
        let ikey = instance_key(instance, db);
        let skey = solve_key(&ikey, options);
        let digest = fnv1a64(&skey);
        let rg = options.gains.as_uniform();
        if let Some(sel) = self.solves.get(&skey) {
            let sel = sel.clone();
            self.trace.cache_hits += 1;
            self.emit_cache(CacheKind::Solve, true, &skey);
            let point = SweepPoint {
                digest,
                rg,
                cache_hit: true,
                chained,
                nodes_explored: 0,
                wall: started.elapsed(),
            };
            self.emit_point(&point);
            self.trace.points.push(point);
            // The audit flag is not part of the cache key, so a hit must run
            // its own audit when this request asked for one. A cached answer
            // carries no live factorization, hence no basis.
            return audit_cached(instance, db, options, sel).map(|sel| (sel, None));
        }
        self.trace.cache_misses += 1;
        self.emit_cache(CacheKind::Solve, false, &skey);
        let (prepared, model_hit) = self.prepared_model(instance, db, options, &ikey)?;
        if model_hit {
            self.trace.model_hits += 1;
        } else {
            self.trace.model_misses += 1;
        }
        let trace = SolveTrace {
            formulation: prepared.formulation,
            ..SolveTrace::default()
        };
        let (sel, basis) = solve_prepared(
            instance,
            db,
            &prepared.model,
            &prepared.map,
            options,
            trace,
            self.sink(),
        )?;
        let point = SweepPoint {
            digest,
            rg,
            cache_hit: false,
            chained,
            nodes_explored: sel.trace.nodes_explored,
            wall: started.elapsed(),
        };
        self.emit_point(&point);
        self.trace.points.push(point);
        self.solves.insert(skey, sel.clone());
        Ok((sel, basis))
    }
}

/// Audits a cache-served [`Selection`] when the request opted in. Fresh
/// solves are audited inside the solver; cached ones bypass it because the
/// audit flag is deliberately excluded from the solve key (auditing must
/// never change *what* is solved, only whether the answer is checked).
fn audit_cached(
    instance: &Instance,
    db: &ImpDb,
    options: &SolveOptions,
    sel: Selection,
) -> Result<Selection, CoreError> {
    if options.audit {
        crate::verify::SelectionAuditor::new(instance, db)
            .audit(&sel, options)
            .into_result()?;
    }
    Ok(sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Imp, ParallelChoice, SCall};
    use partita_interface::{InterfaceKind, TransferJob};
    use partita_ip::{IpBlock, IpFunction};
    use partita_mop::AreaTenths;

    /// Three fir() s-calls on one path, one shared IP — small enough for
    /// instant solves, rich enough for a 3-point sweep.
    fn three_firs(name: &str) -> (Instance, ImpDb) {
        let mut inst = Instance::new(name);
        let ip = inst.library.add(
            IpBlock::builder("fir")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(3))
                .build(),
        );
        let mut scs = Vec::new();
        for _ in 0..3 {
            scs.push(inst.add_scall(SCall::new(
                "fir",
                IpFunction::Fir,
                Cycles(1000),
                TransferJob::new(8, 8),
            )));
        }
        inst.add_path(scs.clone());
        let db = ImpDb::from_imps(
            scs.iter()
                .map(|&sc| {
                    Imp::new(
                        sc,
                        vec![ip],
                        InterfaceKind::Type1,
                        Cycles(600),
                        AreaTenths::from_tenths(2),
                        ParallelChoice::None,
                    )
                })
                .collect(),
        );
        (inst, db)
    }

    #[test]
    fn repeat_solve_hits_cache_with_identical_selection() {
        let (inst, db) = three_firs("a");
        let mut s = SweepSession::new();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(1200)));
        let cold = s.solve(&inst, &db, &opts).unwrap();
        let hit = s.solve(&inst, &db, &opts).unwrap();
        assert_eq!(
            cold, hit,
            "cache hit must be byte-identical, trace included"
        );
        assert_eq!(s.trace().cache_hits, 1);
        assert_eq!(s.trace().cache_misses, 1);
        assert_eq!(s.cached_solves(), 1);
    }

    #[test]
    fn isomorphic_instance_hits_cache() {
        let (a, db_a) = three_firs("first-name");
        let (b, db_b) = three_firs("totally-different-name");
        let mut s = SweepSession::new();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(1200)));
        let first = s.solve(&a, &db_a, &opts).unwrap();
        let second = s.solve(&b, &db_b, &opts).unwrap();
        assert_eq!(first, second);
        assert_eq!(s.trace().cache_hits, 1, "same structure, different name");
    }

    #[test]
    fn different_gains_do_not_collide() {
        let (inst, db) = three_firs("a");
        let mut s = SweepSession::new();
        let lo = s
            .solve(
                &inst,
                &db,
                &SolveOptions::problem2(RequiredGains::uniform(Cycles(600))),
            )
            .unwrap();
        let hi = s
            .solve(
                &inst,
                &db,
                &SolveOptions::problem2(RequiredGains::uniform(Cycles(1800))),
            )
            .unwrap();
        assert_eq!(s.trace().cache_hits, 0);
        assert!(lo.chosen().len() < hi.chosen().len());
    }

    #[test]
    fn canonical_gains_share_cache_entries() {
        use partita_mop::PathId;
        let (inst, db) = three_firs("a");
        let mut s = SweepSession::new();
        let uniform_zero = SolveOptions::problem2(RequiredGains::uniform(Cycles::ZERO));
        let per_path_zero =
            SolveOptions::problem2(RequiredGains::per_path(vec![(PathId(0), Cycles::ZERO)]));
        s.solve(&inst, &db, &uniform_zero).unwrap();
        s.solve(&inst, &db, &per_path_zero).unwrap();
        assert_eq!(
            s.trace().cache_hits,
            1,
            "per_path([(p,0)]) must share uniform(0)'s cache entry"
        );
    }

    #[test]
    fn chained_sweep_matches_cold_sweep() {
        let (inst, db) = three_firs("a");
        let rgs = [Cycles(600), Cycles(1200), Cycles(1800)];
        let base = SolveOptions::default();
        let mut chained = SweepSession::new();
        let chained_sels = chained.sweep(&inst, &db, &base, &rgs).unwrap();
        let mut cold = SweepSession::new();
        let cold_sels = cold.sweep_cold(&inst, &db, &base, &rgs).unwrap();
        assert_eq!(chained_sels.len(), 3);
        for (c, f) in chained_sels.iter().zip(&cold_sels) {
            assert_eq!(c.chosen(), f.chosen());
            assert_eq!(c.total_area(), f.total_area());
            assert_eq!(c.status, f.status);
        }
        // Two of the three points chain off a higher-RG optimum.
        assert_eq!(chained.trace().chained_accepts, 2);
        assert_eq!(chained.trace().chained_rejects, 0);
        assert_eq!(cold.trace().chained_accepts, 0);
        // Results come back in input order, not solve order.
        assert!(chained_sels[0].total_gain() >= Cycles(600));
        assert!(chained_sels[2].total_gain() >= Cycles(1800));
    }

    #[test]
    fn solve_batch_matches_individual_solves_and_caches() {
        let (inst, db) = three_firs("a");
        let jobs: Vec<BatchJob<'_>> = [600u64, 1200, 1800, 600]
            .iter()
            .map(|&rg| BatchJob {
                instance: &inst,
                db: &db,
                options: SolveOptions::problem2(RequiredGains::uniform(Cycles(rg))),
            })
            .collect();
        let mut batch = SweepSession::new();
        let results = batch.solve_batch(&jobs, 4);
        assert_eq!(results.len(), 4);
        let mut single = SweepSession::new();
        for (job, result) in jobs.iter().zip(&results) {
            let expected = single.solve(job.instance, job.db, &job.options).unwrap();
            let got = result.as_ref().expect("batch job feasible");
            assert_eq!(got.chosen(), expected.chosen());
            assert_eq!(got.total_area(), expected.total_area());
        }
        // The duplicate 600 job is solved at most once; a second identical
        // batch is answered entirely from cache.
        assert!(batch.trace().cache_misses <= 4);
        let again = batch.solve_batch(&jobs, 4);
        assert!(batch.trace().cache_hits >= 4);
        for (a, b) in results.iter().zip(&again) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn batch_reports_per_job_errors_in_place() {
        let (inst, db) = three_firs("a");
        let jobs = vec![
            BatchJob {
                instance: &inst,
                db: &db,
                options: SolveOptions::problem2(RequiredGains::uniform(Cycles(1200))),
            },
            BatchJob {
                instance: &inst,
                db: &db,
                // Unreachable: 3 imps x 600 = 1800 max.
                options: SolveOptions::problem2(RequiredGains::uniform(Cycles(10_000))),
            },
        ];
        let mut s = SweepSession::new();
        let results = s.solve_batch(&jobs, 2);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(CoreError::Infeasible { .. })));
    }

    #[test]
    fn lru_bound_evicts_old_solves() {
        let (inst, db) = three_firs("a");
        let mut s = SweepSession::with_capacities(1, 2);
        for rg in [600u64, 1200, 1800] {
            s.solve(
                &inst,
                &db,
                &SolveOptions::problem2(RequiredGains::uniform(Cycles(rg))),
            )
            .unwrap();
        }
        assert_eq!(s.cached_solves(), 2);
        assert_eq!(s.cached_models(), 1);
        // The oldest entry (600) was evicted: solving it again is a miss.
        s.solve(
            &inst,
            &db,
            &SolveOptions::problem2(RequiredGains::uniform(Cycles(600))),
        )
        .unwrap();
        assert_eq!(s.trace().cache_hits, 0);
        assert_eq!(s.trace().cache_misses, 4);
    }

    #[test]
    fn solve_key_excludes_root_basis_and_audit() {
        let (inst, db) = three_firs("a");
        let ikey = instance_key(&inst, &db);
        let a = SolveOptions::problem2(RequiredGains::uniform(Cycles(1200)));
        let mut b = a.clone();
        b.root_basis = Some(Arc::new(partita_ilp::Basis::slack(4, 7)));
        b.audit = !a.audit;
        assert_eq!(
            solve_key(&ikey, &a),
            solve_key(&ikey, &b),
            "root_basis/audit must not shape the canonical solve key"
        );
    }

    #[test]
    fn canonical_service_key_excludes_all_effort_knobs() {
        // The service-grade key must additionally ignore warm-start hints
        // and the warm-start flag itself: selections are hint-invariant, so
        // keying on them would split cross-tenant cache entries for no
        // answer-level reason (PR 6 invariant, service form).
        let (inst, db) = three_firs("a");
        let a = SolveOptions::problem2(RequiredGains::uniform(Cycles(1200)));
        let mut b = a.clone();
        b.root_basis = Some(Arc::new(partita_ilp::Basis::slack(4, 7)));
        b.audit = !a.audit;
        b.hint = Some(vec![crate::ImpId(0), crate::ImpId(2)]);
        b.warm_start = !a.warm_start;
        assert_eq!(
            canonical_solve_key(&inst, &db, &a),
            canonical_solve_key(&inst, &db, &b),
            "audit/basis/hint/warm_start must not shape the service key"
        );
        // ...while anything that *can* change the answer still must.
        let mut c = a.clone();
        c.budget.max_nodes = 1;
        assert_ne!(
            canonical_solve_key(&inst, &db, &a),
            canonical_solve_key(&inst, &db, &c)
        );
        let d = SolveOptions::problem1(RequiredGains::uniform(Cycles(1200)));
        assert_ne!(
            canonical_solve_key(&inst, &db, &a),
            canonical_solve_key(&inst, &db, &d)
        );
    }

    #[test]
    fn canonical_instance_key_excludes_display_name() {
        let (inst_a, db_a) = three_firs("name-a");
        let (inst_b, db_b) = three_firs("name-b");
        assert_eq!(
            canonical_instance_key(&inst_a, &db_a),
            canonical_instance_key(&inst_b, &db_b),
            "isomorphic instances must share canonical keys"
        );
    }

    #[test]
    fn chained_sweep_threads_root_basis() {
        let (inst, db) = three_firs("a");
        let rgs = [Cycles(600), Cycles(1200), Cycles(1800)];
        let mut s = SweepSession::new();
        let sels = s.sweep(&inst, &db, &SolveOptions::default(), &rgs).unwrap();
        // Descending solve order puts 1800 first (cold); the two lower
        // points inherit its root basis, and an RG edit is a pure RHS
        // change, so at least one repair must succeed.
        let reused = sels.iter().filter(|sel| sel.trace.basis_reused).count();
        assert!(
            reused >= 1,
            "no sweep point repaired the chained root basis"
        );
        // And reuse never changes the answers (checked in depth by
        // chained_sweep_matches_cold_sweep; re-asserted cheaply here).
        let mut cold = SweepSession::new();
        let cold_sels = cold
            .sweep_cold(&inst, &db, &SolveOptions::default(), &rgs)
            .unwrap();
        for (c, f) in sels.iter().zip(&cold_sels) {
            assert_eq!(c.chosen(), f.chosen());
            assert_eq!(c.total_area(), f.total_area());
        }
    }

    #[test]
    fn trace_json_lines_are_tagged_and_escaped() {
        let (inst, db) = three_firs("a");
        let mut s = SweepSession::new();
        s.sweep(
            &inst,
            &db,
            &SolveOptions::default(),
            &[Cycles(600), Cycles(1200)],
        )
        .unwrap();
        let lines = s.trace().json_lines("tab\"le");
        assert_eq!(lines.len(), 3, "2 points + summary");
        for line in &lines {
            assert!(
                line.starts_with("{\"schema\":1,\"event\":\"sweep_"),
                "{line}"
            );
            assert!(line.contains("\"sweep\":\"tab\\\"le\""), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(
            lines[0].contains("\"rg\":1200"),
            "descending solve order: {}",
            lines[0]
        );
        assert!(lines[2].contains("\"chained_accepts\":1"));
        let cold = s.take_trace();
        assert!(s.trace().points.is_empty());
        let cmp = SweepTrace::compare_json("x", &cold, &SweepTrace::default());
        assert!(cmp.contains("\"nodes_saved\":"));
        assert!(cmp.contains(&format!("\"cold_nodes\":{}", cold.total_nodes())));
    }

    #[test]
    fn nodes_saved_clamps_instead_of_wrapping() {
        // In range: plain differences, both signs.
        assert_eq!(nodes_saved_clamped(10, 3), 7);
        assert_eq!(nodes_saved_clamped(3, 10), -7);
        assert_eq!(nodes_saved_clamped(0, 0), 0);
        // The old `cold as i64 - chained as i64` wrapped here: u64::MAX
        // as i64 is -1, so a huge cold total read as *negative* savings.
        assert_eq!(nodes_saved_clamped(u64::MAX, 0), i64::MAX);
        assert_eq!(nodes_saved_clamped(0, u64::MAX), i64::MIN);
        assert_eq!(nodes_saved_clamped(u64::MAX, u64::MAX), 0);
        // Exactly at the i64 boundary: representable, not clamped.
        assert_eq!(
            nodes_saved_clamped(i64::MAX as u64, 0),
            i64::MAX,
            "boundary value is exact"
        );
        assert_eq!(nodes_saved_clamped(i64::MAX as u64 + 1, 1), i64::MAX);
        assert_eq!(nodes_saved_clamped(u64::MAX, i64::MAX as u64), i64::MAX);
    }
}
