//! Building selection instances straight from compiled programs — the glue
//! between the Partita front half (compile → profile → analyse) and the
//! selector.

use partita_frontend::CompiledProgram;
use partita_interface::TransferJob;
use partita_ip::IpFunction;
use partita_mop::{enumerate_paths, CallSiteId, FuncId, MopId, PathEnumLimits};

use crate::{parallel_code, CoreError, Instance, SCall};

/// Binds one callee function to the DSP function and data volume its s-calls
/// represent.
#[derive(Debug, Clone, PartialEq)]
pub struct SCallBinding {
    /// The callee's name in the source program.
    pub callee: String,
    /// The DSP function (matched against the IP library).
    pub ip_function: IpFunction,
    /// Words moved per invocation.
    pub job: TransferJob,
}

impl SCallBinding {
    /// Creates a binding.
    #[must_use]
    pub fn new(
        callee: impl Into<String>,
        ip_function: IpFunction,
        job: TransferJob,
    ) -> SCallBinding {
        SCallBinding {
            callee: callee.into(),
            ip_function,
            job,
        }
    }
}

/// Builds an [`Instance`] from a compiled-and-profiled program:
///
/// * one s-call per call site of `caller` whose callee has a binding
///   (unbound callees stay in software and are skipped);
/// * software times from the callees' profiled cycles, frequencies from the
///   call sites' block execution counts;
/// * plain parallel code and Problem 2 candidates from the CDFG analysis
///   (Definitions 3–5);
/// * one [`crate::PathSpec`] per enumerated execution path of `caller`.
///
/// The caller still owns the IP library: populate `instance.library` before
/// generating IMPs.
///
/// # Errors
///
/// Propagates parallel-code analysis failures; unknown `caller` ids surface
/// as [`CoreError::UnknownSCall`] from the analysis layer.
pub fn instance_from_compiled(
    compiled: &CompiledProgram,
    caller: FuncId,
    bindings: &[SCallBinding],
    name: impl Into<String>,
) -> Result<Instance, CoreError> {
    let mut instance = Instance::new(name);
    let func = compiled
        .program
        .function(caller)
        .map_err(|_| CoreError::UnknownSCall(CallSiteId(0)))?;
    let infos = parallel_code::analyze_function(compiled, caller)?;

    // First pass: create the s-calls and remember mop → id.
    let mut by_mop: Vec<(MopId, CallSiteId)> = Vec::new();
    for (block, mop, callee) in func.call_mops() {
        let callee_func = match compiled.program.function(callee) {
            Ok(f) => f,
            Err(_) => continue,
        };
        let Some(binding) = bindings.iter().find(|b| b.callee == callee_func.name()) else {
            continue;
        };
        let freq = func
            .block(block)
            .map(|b| b.exec_count())
            .unwrap_or(1)
            .max(1);
        let info = infos.iter().find(|(m, _)| *m == mop);
        let mut sc = SCall::new(
            callee_func.name(),
            binding.ip_function.clone(),
            callee_func.profiled_cycles(),
            binding.job,
        )
        .with_freq(freq);
        if let Some((_, info)) = info {
            sc = sc.with_plain_pc(info.cycles);
        }
        let id = instance.add_scall(sc);
        by_mop.push((mop, id));
    }

    // Second pass: Problem 2 candidates (independent calls in software).
    for (mop, id) in &by_mop {
        if let Some((_, info)) = infos.iter().find(|(m, _)| m == mop) {
            let candidates: Vec<CallSiteId> = info
                .sw_candidate_mops
                .iter()
                .filter_map(|cm| by_mop.iter().find(|(m, _)| m == cm).map(|(_, i)| *i))
                .collect();
            instance.scalls[id.index()].sw_pc_candidates = candidates;
        }
    }

    // Paths: map each enumerated block path to the s-calls on it.
    if let Ok(paths) = enumerate_paths(func, PathEnumLimits::default()) {
        for p in paths {
            let on_path: Vec<CallSiteId> = by_mop
                .iter()
                .filter(|(mop, _)| {
                    func.blocks()
                        .iter()
                        .any(|b| p.contains(b.id()) && b.mops().contains(mop))
                })
                .map(|(_, id)| *id)
                .collect();
            instance.add_path(on_path);
        }
    }

    Ok(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_asip::{ExecOptions, Kernel};
    use partita_frontend::{compile, profile};
    use partita_mop::Cycles;

    fn compiled() -> CompiledProgram {
        let src = "
            xmem a[8] @ 0; ymem b[8] @ 0; xmem c[8] @ 16;
            fn fir() reads a writes b { let i = 0; while (i < 8) { b[i] = a[i]; i = i + 1; } }
            fn iir() reads c writes c { let i = 0; while (i < 8) { c[i] = c[i] + 1; i = i + 1; } }
            fn main() {
                let n = 0;
                while (n < 3) { fir(); n = n + 1; }
                iir();
            }
        ";
        let mut compiled = compile(src).expect("compiles");
        let mut kernel = Kernel::new(64, 64);
        profile(&mut compiled, &mut kernel, &ExecOptions::default()).expect("runs");
        compiled
    }

    #[test]
    fn builds_scalls_with_profiled_data() {
        let compiled = compiled();
        let main = compiled.program.function_by_name("main").unwrap();
        let bindings = vec![
            SCallBinding::new("fir", IpFunction::Fir, TransferJob::new(16, 16)),
            SCallBinding::new("iir", IpFunction::Iir, TransferJob::new(16, 16)),
        ];
        let inst = instance_from_compiled(&compiled, main, &bindings, "t").unwrap();
        assert_eq!(inst.scalls.len(), 2);
        // The fir call sits in a loop body executed 3 times.
        let fir = &inst.scalls[0];
        assert_eq!(fir.name, "fir");
        assert_eq!(fir.freq, 3);
        assert!(fir.sw_cycles > Cycles(8));
        // fir and iir touch disjoint regions: mutual Problem 2 candidates.
        assert_eq!(fir.sw_pc_candidates.len(), 1);
        assert_eq!(inst.scalls[1].sw_pc_candidates.len(), 1);
        // One enumerated path through main covering both calls.
        assert!(!inst.paths.is_empty());
        assert!(inst.paths.iter().any(|p| p.scalls.len() == 2));
    }

    #[test]
    fn unbound_callees_are_skipped() {
        let compiled = compiled();
        let main = compiled.program.function_by_name("main").unwrap();
        let bindings = vec![SCallBinding::new(
            "fir",
            IpFunction::Fir,
            TransferJob::new(16, 16),
        )];
        let inst = instance_from_compiled(&compiled, main, &bindings, "t").unwrap();
        assert_eq!(inst.scalls.len(), 1);
        assert_eq!(inst.scalls[0].name, "fir");
    }
}
