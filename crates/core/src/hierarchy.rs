//! *IMP flatten* for hierarchical applications (paper §4, Fig. 11).
//!
//! `main → jpeg → dct2d → dct1d → fft`: IPs may exist at several levels.
//! The paper handles this by computing the IMPs of an upper-level s-call
//! from all possible IMPs of its lower-level s-calls, so that the ILP only
//! ever sees top-level s-calls.
//!
//! [`flatten`] implements that bottom-up folding: a parent s-call gains
//! *composite* IMPs ("software parent, children accelerated"), whose gain is
//! the sum of the chosen child gains, whose interface area is the sum of the
//! child interface areas, and whose `s_ijk` row is the union of the child IP
//! sets. Child s-calls lose their own IMPs (they are decided through the
//! parent).

use partita_mop::{CallSiteId, Cycles};

use crate::{CoreError, Imp, ImpDb, ParallelChoice};

/// One level of hierarchy: a parent s-call whose software implementation
/// contains child s-calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierSpec {
    /// The parent s-call (e.g. `dct2d`).
    pub parent: CallSiteId,
    /// The child s-calls inside the parent's software implementation
    /// (e.g. the two `dct1d` call sites).
    pub children: Vec<CallSiteId>,
}

/// Limits for composite enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlattenLimits {
    /// Best IMPs kept per child when forming combinations.
    pub per_child: usize,
    /// Maximum composites added per parent.
    pub per_parent: usize,
}

impl Default for FlattenLimits {
    fn default() -> Self {
        FlattenLimits {
            per_child: 4,
            per_parent: 32,
        }
    }
}

/// Structurally validates a hierarchy before flattening.
///
/// A malformed spec list used to slide silently through [`flatten`] and
/// produce nonsense composites (or lose IMPs); now each defect surfaces as
/// a typed [`CoreError::MalformedHierarchy`]:
///
/// * a spec with no children,
/// * a parent that lists itself among its children,
/// * the same child listed twice within one spec,
/// * a child consumed by two different specs,
/// * two specs folding into the same parent,
/// * a spec whose parent was already consumed as an earlier spec's child
///   (its IMPs are gone by the time it would fold — a bottom-up ordering
///   violation).
///
/// # Errors
///
/// [`CoreError::MalformedHierarchy`] naming the offending parent.
pub fn validate_specs(specs: &[HierSpec]) -> Result<(), CoreError> {
    let err = |parent: CallSiteId, detail: &str| {
        Err(CoreError::MalformedHierarchy {
            parent,
            detail: detail.to_string(),
        })
    };
    let mut consumed: Vec<CallSiteId> = Vec::new();
    let mut parents: Vec<CallSiteId> = Vec::new();
    for spec in specs {
        if spec.children.is_empty() {
            return err(spec.parent, "spec has no children");
        }
        if spec.children.contains(&spec.parent) {
            return err(spec.parent, "parent listed among its own children");
        }
        if parents.contains(&spec.parent) {
            return err(spec.parent, "two specs fold into the same parent");
        }
        if consumed.contains(&spec.parent) {
            return err(
                spec.parent,
                "parent was already consumed as an earlier spec's child",
            );
        }
        for (i, &child) in spec.children.iter().enumerate() {
            if spec.children[..i].contains(&child) {
                return err(spec.parent, "spec lists the same child twice");
            }
            if consumed.contains(&child) {
                return err(spec.parent, "child already consumed by an earlier spec");
            }
        }
        parents.push(spec.parent);
        consumed.extend(spec.children.iter().copied());
    }
    Ok(())
}

/// Validating wrapper around [`flatten`]: rejects malformed hierarchies
/// with a typed error instead of folding them into a nonsense database.
///
/// # Errors
///
/// [`CoreError::MalformedHierarchy`] from [`validate_specs`].
pub fn try_flatten(
    db: &ImpDb,
    specs: &[HierSpec],
    limits: FlattenLimits,
) -> Result<ImpDb, CoreError> {
    validate_specs(specs)?;
    Ok(flatten(db, specs, limits))
}

/// Folds child IMPs into composite parent IMPs.
///
/// Apply bottom-up (inner specs first) for multi-level hierarchies — exactly
/// the paper's "IMPs of dct1d() at level 0 are considered in computing those
/// of dct2d() at level 1" order.
///
/// This function does not validate its input; use [`try_flatten`] (or
/// [`validate_specs`]) to reject malformed hierarchies first.
#[must_use]
pub fn flatten(db: &ImpDb, specs: &[HierSpec], limits: FlattenLimits) -> ImpDb {
    let mut current = db.clone();
    for spec in specs {
        current = flatten_one(&current, spec, limits);
    }
    current
}

fn flatten_one(db: &ImpDb, spec: &HierSpec, limits: FlattenLimits) -> ImpDb {
    // Candidate IMPs per child: best `per_child` by gain, plus "software"
    // (represented as None).
    let child_options: Vec<Vec<Option<&Imp>>> = spec
        .children
        .iter()
        .map(|&c| {
            let mut imps = db.for_scall(c);
            imps.sort_by_key(|i| std::cmp::Reverse(i.gain));
            imps.truncate(limits.per_child);
            let mut opts: Vec<Option<&Imp>> = vec![None];
            opts.extend(imps.into_iter().map(Some));
            opts
        })
        .collect();

    // Cartesian product over children (bounded).
    let mut composites: Vec<Imp> = Vec::new();
    let mut stack: Vec<usize> = vec![0; child_options.len()];
    loop {
        // Build the composite for the current index vector.
        let picks: Vec<&Imp> = stack
            .iter()
            .zip(&child_options)
            .filter_map(|(&i, opts)| opts[i])
            .collect();
        if !picks.is_empty() {
            let gain: Cycles = picks.iter().map(|i| i.gain).sum();
            let area = picks.iter().map(|i| i.interface_area).sum();
            let mut ips: Vec<_> = picks.iter().flat_map(|i| i.ips.iter().copied()).collect();
            ips.sort_unstable();
            ips.dedup();
            let interface = picks[0].interface;
            composites.push(Imp::new(
                spec.parent,
                ips,
                interface,
                gain,
                area,
                ParallelChoice::None,
            ));
        }
        // Advance the index vector.
        let mut done = true;
        for (i, idx) in stack.iter_mut().enumerate() {
            *idx += 1;
            if *idx < child_options[i].len() {
                done = false;
                break;
            }
            *idx = 0;
        }
        if done {
            break;
        }
    }
    composites.sort_by_key(|c| std::cmp::Reverse(c.gain));
    composites.truncate(limits.per_parent);

    // Rebuild: keep every IMP except the children's, add parent composites.
    let mut out = ImpDb::default();
    for imp in db.imps() {
        if !spec.children.contains(&imp.scall) {
            out.add(imp.clone());
        }
    }
    for c in composites {
        out.add(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_interface::InterfaceKind;
    use partita_ip::IpId;
    use partita_mop::AreaTenths;

    fn imp(sc: u32, ip: u32, gain: u64, kind: InterfaceKind) -> Imp {
        Imp::new(
            CallSiteId(sc),
            vec![IpId(ip)],
            kind,
            Cycles(gain),
            AreaTenths::from_tenths(2),
            ParallelChoice::None,
        )
    }

    /// Fig. 11 shape: parent dct2d (sc0), children dct1d call sites (sc1, sc2).
    #[test]
    fn composites_cover_child_combinations() {
        let db = ImpDb::from_imps(vec![
            imp(0, 1, 1000, InterfaceKind::Type1), // direct 2D-DCT IP
            imp(1, 2, 300, InterfaceKind::Type0),  // 1D-DCT IP on child 1
            imp(2, 2, 300, InterfaceKind::Type0),  // 1D-DCT IP on child 2
        ]);
        let spec = HierSpec {
            parent: CallSiteId(0),
            children: vec![CallSiteId(1), CallSiteId(2)],
        };
        let flat = flatten(&db, &[spec], FlattenLimits::default());
        // Children lose their own IMPs.
        assert!(flat.for_scall(CallSiteId(1)).is_empty());
        assert!(flat.for_scall(CallSiteId(2)).is_empty());
        // Parent: the direct IP plus composites {c1}, {c2}, {c1, c2}.
        let parent_imps = flat.for_scall(CallSiteId(0));
        assert_eq!(parent_imps.len(), 4);
        let best_composite = parent_imps
            .iter()
            .filter(|i| i.ips == vec![IpId(2)])
            .map(|i| i.gain)
            .max()
            .unwrap();
        assert_eq!(best_composite, Cycles(600)); // both children accelerated
    }

    #[test]
    fn shared_child_ip_deduplicated_in_sijk() {
        let db = ImpDb::from_imps(vec![
            imp(1, 5, 100, InterfaceKind::Type0),
            imp(2, 5, 100, InterfaceKind::Type0),
        ]);
        let spec = HierSpec {
            parent: CallSiteId(0),
            children: vec![CallSiteId(1), CallSiteId(2)],
        };
        let flat = flatten(&db, &[spec], FlattenLimits::default());
        let both = flat
            .for_scall(CallSiteId(0))
            .into_iter()
            .find(|i| i.gain == Cycles(200))
            .unwrap();
        assert_eq!(both.ips, vec![IpId(5)]); // counted once
        assert_eq!(both.interface_area, AreaTenths::from_tenths(4)); // 2 interfaces
    }

    #[test]
    fn multi_level_flatten_bottom_up() {
        // fft (sc2) inside dct1d (sc1) inside dct2d (sc0).
        let db = ImpDb::from_imps(vec![
            imp(2, 3, 50, InterfaceKind::Type0),  // FFT IP
            imp(1, 2, 200, InterfaceKind::Type0), // 1D-DCT IP
        ]);
        let specs = vec![
            HierSpec {
                parent: CallSiteId(1),
                children: vec![CallSiteId(2)],
            },
            HierSpec {
                parent: CallSiteId(0),
                children: vec![CallSiteId(1)],
            },
        ];
        let flat = flatten(&db, &specs, FlattenLimits::default());
        let top = flat.for_scall(CallSiteId(0));
        // Top sees: composite(dct1d IP) and composite(composite(fft IP)).
        assert_eq!(top.len(), 2);
        let gains: Vec<u64> = top.iter().map(|i| i.gain.get()).collect();
        assert!(gains.contains(&200));
        assert!(gains.contains(&50));
        assert!(flat.for_scall(CallSiteId(1)).is_empty());
        assert!(flat.for_scall(CallSiteId(2)).is_empty());
    }

    #[test]
    fn malformed_hierarchies_error_instead_of_folding() {
        let db = ImpDb::from_imps(vec![
            imp(1, 2, 300, InterfaceKind::Type0),
            imp(2, 2, 300, InterfaceKind::Type0),
        ]);
        let spec = |parent: u32, children: Vec<u32>| HierSpec {
            parent: CallSiteId(parent),
            children: children.into_iter().map(CallSiteId).collect(),
        };
        let assert_malformed = |specs: &[HierSpec], needle: &str| {
            let err = try_flatten(&db, specs, FlattenLimits::default()).unwrap_err();
            match err {
                CoreError::MalformedHierarchy { detail, .. } => {
                    assert!(detail.contains(needle), "{detail:?} missing {needle:?}");
                }
                other => panic!("expected MalformedHierarchy, got {other:?}"),
            }
        };
        assert_malformed(&[spec(0, vec![])], "no children");
        assert_malformed(&[spec(0, vec![1, 0])], "own children");
        assert_malformed(&[spec(0, vec![1, 1])], "twice");
        assert_malformed(
            &[spec(0, vec![1]), spec(3, vec![1])],
            "already consumed by an earlier spec",
        );
        assert_malformed(&[spec(0, vec![1]), spec(0, vec![2])], "same parent");
        assert_malformed(
            &[spec(0, vec![1]), spec(1, vec![2])],
            "consumed as an earlier spec's child",
        );
        // A well-formed multi-level hierarchy still flattens.
        let ok = try_flatten(
            &db,
            &[spec(3, vec![2]), spec(0, vec![1, 3])],
            FlattenLimits::default(),
        )
        .unwrap();
        assert!(!ok.for_scall(CallSiteId(0)).is_empty());
        assert!(ok.for_scall(CallSiteId(1)).is_empty());
    }

    #[test]
    fn limits_cap_composites() {
        let mut imps = Vec::new();
        for child in 1..=3u32 {
            for ip in 0..6u32 {
                imps.push(imp(child, ip, 10 * u64::from(ip + 1), InterfaceKind::Type0));
            }
        }
        let db = ImpDb::from_imps(imps);
        let spec = HierSpec {
            parent: CallSiteId(0),
            children: vec![CallSiteId(1), CallSiteId(2), CallSiteId(3)],
        };
        let limits = FlattenLimits {
            per_child: 2,
            per_parent: 5,
        };
        let flat = flatten(&db, &[spec], limits);
        assert!(flat.for_scall(CallSiteId(0)).len() <= 5);
    }
}
