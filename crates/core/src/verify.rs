//! Independent selection verification and solver fault injection.
//!
//! PRs 1–3 stacked optimizations onto the selection path — parallel
//! branch-and-bound, warm-start hints, canonical-instance caches — whose
//! correctness was attested only by the solver's own differential corpus.
//! This module adds the missing piece: an oracle that re-checks a
//! [`Selection`] against the paper's constraints *from first principles*,
//! sharing no code with the ILP formulation, the simplex relaxation, or any
//! cache.
//!
//! # The auditor
//!
//! [`SelectionAuditor`] takes the raw [`Instance`], the [`ImpDb`] and a
//! [`Selection`] and re-derives:
//!
//! * **(a) per-path gain** — recomputed from the `partita-interface` timing
//!   model ([`partita_interface::performance_gain`]) when the database is
//!   timing-consistent, otherwise from the stored per-IMP gains — and checked
//!   against every path's required gain (Eq. 2);
//! * **(b) area accounting** — IP sharing (each instantiated IP charged
//!   once, straight from the raw library) and per-selection interface area
//!   (re-derived from [`partita_interface::AreaModel`] for generated
//!   databases);
//! * **(c) conflict constraints** — at most one IMP per s-call (Eq. 1) and
//!   the SC-PC selection rule, cross-checked against
//!   [`crate::sc_pc_conflicts`];
//! * **(d) parallel-code legality** — parallel execution only on interface
//!   types with buffers (types 1/3);
//! * **(e) hierarchy / IMP-flatten consistency** — composite IMPs must be
//!   well-formed, and with [`SelectionAuditor::with_hierarchy`] no chosen
//!   IMP may implement an s-call that was folded into a parent.
//!
//! The result is a structured [`AuditReport`]: a violation list with
//! path/s-call/IP provenance, JSON-serializable alongside
//! [`crate::SolveTrace`] / [`crate::SweepTrace`].
//!
//! The auditor runs automatically after every solve when
//! [`crate::SolveOptions::audit`] is enabled (or the `PARTITA_AUDIT`
//! environment variable is set): a dirty report turns into
//! [`CoreError::AuditFailed`] instead of a silently wrong selection.
//!
//! # Fault injection
//!
//! [`FaultPlan`] deliberately degrades a solve — node-cap exhaustion,
//! deadline expiry, poisoned warm-start hints, disabled fallbacks — and
//! classifies the outcome: every degraded path must still produce an
//! audit-clean feasible selection or a typed error, never a silent
//! infeasible result ([`FaultVerdict::SilentlyWrong`]).

use std::fmt;
use std::time::Duration;

use partita_interface::performance_gain;
use partita_ip::IpId;
use partita_mop::{AreaTenths, CallSiteId, Cycles, PathId};

use crate::hierarchy::HierSpec;
use crate::telemetry::json_escape;
use crate::{
    sc_pc_conflicts, CoreError, Imp, ImpDb, ImpId, Instance, ParallelChoice, ProblemKind,
    Selection, SolveOptions, Solver,
};

/// Tolerance for comparing the ILP objective against the re-derived area:
/// the formulation subtracts a gain tie-break of at most 0.4 area tenths
/// from the objective, so any discrepancy below half a tenth is legitimate
/// while a real accounting error (≥ 1 tenth) is always caught.
const OBJECTIVE_TOL_TENTHS: f64 = 0.45;

/// Which audit dimension a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AuditCheck {
    /// A chosen IMP is not (or not identical to) a database entry.
    Membership,
    /// Eq. 1: more than one implementation for an s-call, or an unknown
    /// s-call.
    ScUniqueness,
    /// The SC-PC selection rule: an s-call both implemented and consumed as
    /// software parallel code.
    ScPcConflict,
    /// Parallel execution on an interface type without buffers, or a
    /// malformed parallel-code choice.
    ParallelLegality,
    /// Eq. 2: a path's independently recomputed gain misses its requirement.
    PathGain,
    /// A stored per-IMP gain disagrees with the timing model.
    GainDerivation,
    /// A stored per-IMP interface area disagrees with the area model.
    AreaDerivation,
    /// The selection's once-per-IP area bookkeeping is wrong.
    IpAccounting,
    /// The selection's interface-area or per-path-gain bookkeeping is wrong.
    InterfaceAccounting,
    /// A composite IMP is malformed, or a flattened child is implemented
    /// directly.
    HierarchyConsistency,
    /// The selection draws more power than the configured budget.
    PowerBudget,
    /// The ILP objective value disagrees with the re-derived total area.
    ObjectiveConsistency,
}

impl fmt::Display for AuditCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AuditCheck::Membership => "membership",
            AuditCheck::ScUniqueness => "sc_uniqueness",
            AuditCheck::ScPcConflict => "sc_pc_conflict",
            AuditCheck::ParallelLegality => "parallel_legality",
            AuditCheck::PathGain => "path_gain",
            AuditCheck::GainDerivation => "gain_derivation",
            AuditCheck::AreaDerivation => "area_derivation",
            AuditCheck::IpAccounting => "ip_accounting",
            AuditCheck::InterfaceAccounting => "interface_accounting",
            AuditCheck::HierarchyConsistency => "hierarchy_consistency",
            AuditCheck::PowerBudget => "power_budget",
            AuditCheck::ObjectiveConsistency => "objective_consistency",
        })
    }
}

/// One audit violation, with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// The check that failed.
    pub check: AuditCheck,
    /// The execution path involved, when identifiable.
    pub path: Option<PathId>,
    /// The s-call involved, when identifiable.
    pub scall: Option<CallSiteId>,
    /// The IMP involved, when identifiable.
    pub imp: Option<ImpId>,
    /// The IP involved, when identifiable.
    pub ip: Option<IpId>,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl AuditViolation {
    fn new(check: AuditCheck, detail: impl Into<String>) -> AuditViolation {
        AuditViolation {
            check,
            path: None,
            scall: None,
            imp: None,
            ip: None,
            detail: detail.into(),
        }
    }

    fn on_path(mut self, path: PathId) -> AuditViolation {
        self.path = Some(path);
        self
    }

    fn on_scall(mut self, scall: CallSiteId) -> AuditViolation {
        self.scall = Some(scall);
        self
    }

    fn on_imp(mut self, imp: ImpId) -> AuditViolation {
        self.imp = Some(imp);
        self
    }

    fn on_ip(mut self, ip: IpId) -> AuditViolation {
        self.ip = Some(ip);
        self
    }

    /// Renders the violation as a JSON object (hand-rolled, matching the
    /// [`crate::telemetry::Event`] rendering style).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn opt(v: Option<String>) -> String {
            v.map_or_else(
                || "null".to_string(),
                |s| format!("\"{}\"", json_escape(&s)),
            )
        }
        format!(
            "{{\"check\":\"{}\",\"path\":{},\"scall\":{},\"imp\":{},\"ip\":{},\"detail\":\"{}\"}}",
            self.check,
            opt(self.path.map(|p| p.to_string())),
            opt(self.scall.map(|s| s.to_string())),
            opt(self.imp.map(|i| i.to_string())),
            opt(self.ip.map(|i| i.to_string())),
            json_escape(&self.detail),
        )
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.check)?;
        if let Some(p) = self.path {
            write!(f, " {p}")?;
        }
        if let Some(s) = self.scall {
            write!(f, " {s}")?;
        }
        if let Some(i) = self.imp {
            write!(f, " {i}")?;
        }
        if let Some(i) = self.ip {
            write!(f, " {i}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The structured result of one audit.
///
/// # Invariants
///
/// * `checks_run` counts audit *dimensions* exercised, not individual
///   assertions; it is independent of whether violations were found.
/// * A clean report ([`AuditReport::is_clean`]) has an empty `violations`
///   vector — the two are never out of sync because cleanliness is defined
///   as that emptiness.
///
/// # Examples
///
/// ```
/// use partita_core::verify::AuditReport;
///
/// let report = AuditReport::default();
/// assert!(report.is_clean());
/// // Clean reports convert into `Ok(())`; dirty ones into
/// // `CoreError::AuditFailed`.
/// assert!(report.into_result().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// Every violation found (empty when the selection is clean).
    pub violations: Vec<AuditViolation>,
    /// Number of audit dimensions exercised.
    pub checks_run: usize,
    /// Chosen IMPs examined.
    pub imps_audited: usize,
    /// Execution paths examined.
    pub paths_audited: usize,
    /// `true` when per-IMP gains and interface areas were independently
    /// re-derived from the timing/area models (generated databases);
    /// `false` when the database carries published/calibrated figures the
    /// models cannot reproduce, in which case the audit checks internal
    /// consistency against the stored values instead.
    pub gain_rederived: bool,
}

impl AuditReport {
    /// `true` when no violations were found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Converts the report into a result: clean reports pass, dirty ones
    /// become [`CoreError::AuditFailed`].
    ///
    /// # Errors
    ///
    /// [`CoreError::AuditFailed`] carrying the violation count and the JSON
    /// rendering of this report.
    pub fn into_result(self) -> Result<(), CoreError> {
        if self.is_clean() {
            Ok(())
        } else {
            Err(CoreError::AuditFailed {
                violations: self.violations.len(),
                report: self.to_json(),
            })
        }
    }

    /// Renders the report as a single JSON object, suitable for logging next
    /// to [`crate::SolveTrace`] / [`crate::SweepTrace`] lines.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"clean\":{},\"violations\":[{}],\"checks_run\":{},",
                "\"imps_audited\":{},\"paths_audited\":{},\"gain_rederived\":{}}}"
            ),
            self.is_clean(),
            self.violations
                .iter()
                .map(AuditViolation::to_json)
                .collect::<Vec<_>>()
                .join(","),
            self.checks_run,
            self.imps_audited,
            self.paths_audited,
            self.gain_rederived,
        )
    }
}

/// How the auditor treats stored per-IMP gains and interface areas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GainPolicy {
    /// Detect: re-derive strictly when every single-IP IMP in the database
    /// reproduces under the timing/area models, otherwise trust the stored
    /// figures (published/calibrated databases). The default.
    #[default]
    Auto,
    /// Always re-derive; any IMP the models cannot reproduce falls back to
    /// its stored gain, but a reproducible IMP that disagrees is a
    /// violation.
    Rederive,
    /// Always trust the stored figures (internal-consistency audit only).
    Trust,
}

/// The independent selection verifier.
///
/// Construct with the *raw* instance and IMP database — never with anything
/// that has passed through the ILP model or a cache — and call
/// [`SelectionAuditor::audit`].
///
/// ```
/// use partita_core::verify::SelectionAuditor;
/// use partita_core::{ImpDb, Instance, RequiredGains, SCall, SolveOptions, Solver};
/// use partita_ip::{IpBlock, IpFunction};
/// use partita_interface::TransferJob;
/// use partita_mop::{AreaTenths, Cycles};
///
/// # fn main() -> Result<(), partita_core::CoreError> {
/// let mut instance = Instance::new("demo");
/// instance.library.add(
///     IpBlock::builder("fir16").function(IpFunction::Fir)
///         .rates(4, 4).latency(8)
///         .area(AreaTenths::from_units(3)).build(),
/// );
/// let sc = instance.add_scall(
///     SCall::new("fir", IpFunction::Fir, Cycles(4000), TransferJob::new(160, 160)),
/// );
/// instance.add_path(vec![sc]);
/// let db = ImpDb::generate(&instance);
/// let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(1000)));
/// let sel = Solver::new(&instance).with_imps(db.clone()).solve(&opts)?;
///
/// let report = SelectionAuditor::new(&instance, &db).audit(&sel, &opts);
/// assert!(report.is_clean(), "{}", report.to_json());
/// assert!(report.gain_rederived); // generated db: gains re-derived from timing
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct SelectionAuditor<'a> {
    instance: &'a Instance,
    db: &'a ImpDb,
    hierarchy: &'a [HierSpec],
    policy: GainPolicy,
    sink: Option<&'a dyn crate::telemetry::TelemetrySink>,
}

impl std::fmt::Debug for SelectionAuditor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectionAuditor")
            .field("instance", &self.instance)
            .field("db", &self.db)
            .field("hierarchy", &self.hierarchy)
            .field("policy", &self.policy)
            .field("sink", &self.sink.map(|_| "dyn TelemetrySink"))
            .finish()
    }
}

impl<'a> SelectionAuditor<'a> {
    /// Creates an auditor over the raw instance and database.
    #[must_use]
    pub fn new(instance: &'a Instance, db: &'a ImpDb) -> SelectionAuditor<'a> {
        SelectionAuditor {
            instance,
            db,
            hierarchy: &[],
            policy: GainPolicy::Auto,
            sink: None,
        }
    }

    /// Routes this auditor's [`crate::telemetry::Event::AuditFinished`]
    /// event into `sink` instead of the process-wide
    /// [`crate::telemetry::global`] sink. The solver passes its own sink
    /// through here when [`SolveOptions::audit`] is on.
    #[must_use]
    pub fn with_sink(
        mut self,
        sink: &'a dyn crate::telemetry::TelemetrySink,
    ) -> SelectionAuditor<'a> {
        self.sink = Some(sink);
        self
    }

    /// Supplies the hierarchy specs the database was flattened with, so the
    /// audit can reject selections that implement a folded child directly.
    #[must_use]
    pub fn with_hierarchy(mut self, specs: &'a [HierSpec]) -> SelectionAuditor<'a> {
        self.hierarchy = specs;
        self
    }

    /// Overrides the gain/area re-derivation policy.
    #[must_use]
    pub fn with_gain_policy(mut self, policy: GainPolicy) -> SelectionAuditor<'a> {
        self.policy = policy;
        self
    }

    /// Re-derives one IMP's gain from the timing model, or `None` when the
    /// IMP is not reproducible from the instance alone (composite multi-IP
    /// IMPs, unknown s-calls/IPs, infeasible pairings, overflowing cycle
    /// counts).
    fn rederive_gain(&self, imp: &Imp) -> Option<Cycles> {
        let [ip_id] = imp.ips[..] else { return None };
        let sc = self.instance.scall(imp.scall)?;
        let ip = self.instance.library.block(ip_id)?;
        let pc = match &imp.parallel {
            ParallelChoice::None => None,
            ParallelChoice::PlainPc => Some(sc.plain_pc),
            ParallelChoice::SwScalls(consumed) => {
                let mut pc = sc.plain_pc;
                for &j in consumed {
                    pc += self.instance.scall(j)?.sw_cycles;
                }
                Some(pc)
            }
        };
        performance_gain(sc.sw_cycles, ip, imp.interface, sc.job, pc)
            .ok()
            .map(|g| g.scaled(sc.freq))
    }

    /// Re-derives one IMP's interface area from the area model (single-IP
    /// IMPs only; composites sum child interfaces the model cannot see).
    fn rederive_area(&self, imp: &Imp) -> Option<AreaTenths> {
        if imp.ips.len() != 1 {
            return None;
        }
        let sc = self.instance.scall(imp.scall)?;
        Some(
            self.instance
                .area_model
                .interface_area(imp.interface, sc.job)
                .total(),
        )
    }

    /// Resolves [`GainPolicy::Auto`]: strict re-derivation is enabled only
    /// when every reproducible IMP in the database matches the models, i.e.
    /// the database is the product of [`ImpDb::generate`] rather than
    /// published table data.
    fn resolve_policy(&self) -> GainPolicy {
        match self.policy {
            GainPolicy::Auto => {
                let consistent = self.db.imps().iter().all(|imp| {
                    let g_ok = self.rederive_gain(imp).is_none_or(|g| g == imp.gain);
                    let a_ok = self
                        .rederive_area(imp)
                        .is_none_or(|a| a == imp.interface_area);
                    g_ok && a_ok
                });
                if consistent && !self.db.is_empty() {
                    GainPolicy::Rederive
                } else {
                    GainPolicy::Trust
                }
            }
            p => p,
        }
    }

    /// Audits `selection` against the constraints implied by `options`,
    /// re-deriving everything from the raw instance and database.
    #[must_use]
    pub fn audit(&self, selection: &Selection, options: &SolveOptions) -> AuditReport {
        let policy = self.resolve_policy();
        let rederive = policy == GainPolicy::Rederive;
        let mut v: Vec<AuditViolation> = Vec::new();
        let chosen = selection.chosen();

        // (c) Eq. 1 — at most one implementation per s-call, and every
        // chosen IMP must be a verbatim database entry for a real s-call.
        let mut seen: Vec<CallSiteId> = Vec::new();
        for imp in chosen {
            match self.db.get(imp.id) {
                None => v.push(
                    AuditViolation::new(AuditCheck::Membership, "imp id not in the database")
                        .on_imp(imp.id)
                        .on_scall(imp.scall),
                ),
                Some(entry) if entry != imp => v.push(
                    AuditViolation::new(
                        AuditCheck::Membership,
                        "chosen imp differs from its database entry",
                    )
                    .on_imp(imp.id)
                    .on_scall(imp.scall),
                ),
                Some(_) => {}
            }
            if self.instance.scall(imp.scall).is_none() {
                v.push(
                    AuditViolation::new(AuditCheck::ScUniqueness, "imp implements unknown s-call")
                        .on_imp(imp.id)
                        .on_scall(imp.scall),
                );
            }
            if seen.contains(&imp.scall) {
                v.push(
                    AuditViolation::new(AuditCheck::ScUniqueness, "s-call has two implementations")
                        .on_imp(imp.id)
                        .on_scall(imp.scall),
                );
            }
            seen.push(imp.scall);
        }

        // (c) SC-PC selection rule, first-principles: a consumed s-call may
        // not be implemented. Cross-checked against the conflict-pair list.
        for imp in chosen {
            for &consumed in imp.parallel.consumed_scalls() {
                if consumed == imp.scall {
                    v.push(
                        AuditViolation::new(
                            AuditCheck::ScPcConflict,
                            "imp consumes its own s-call as parallel code",
                        )
                        .on_imp(imp.id)
                        .on_scall(imp.scall),
                    );
                }
                if self.instance.scall(consumed).is_none() {
                    v.push(
                        AuditViolation::new(
                            AuditCheck::ScPcConflict,
                            "consumed parallel-code s-call does not exist",
                        )
                        .on_imp(imp.id)
                        .on_scall(consumed),
                    );
                }
                if seen.contains(&consumed) {
                    v.push(
                        AuditViolation::new(
                            AuditCheck::ScPcConflict,
                            "s-call both implemented and consumed as software parallel code",
                        )
                        .on_imp(imp.id)
                        .on_scall(consumed),
                    );
                }
            }
        }
        for pair in sc_pc_conflicts(self.db) {
            let has = |id: ImpId| chosen.iter().any(|i| i.id == id);
            if has(pair.a) && has(pair.b) {
                v.push(
                    AuditViolation::new(
                        AuditCheck::ScPcConflict,
                        "selection contains a database conflict pair",
                    )
                    .on_imp(pair.a),
                );
            }
        }

        // (d) Parallel-code legality: only buffered types (1/3) overlap
        // kernel and IP execution; Problem 1 forbids software parallel code.
        for imp in chosen {
            if imp.parallel != ParallelChoice::None && !imp.interface.supports_parallel() {
                v.push(
                    AuditViolation::new(
                        AuditCheck::ParallelLegality,
                        format!("{} cannot execute parallel code", imp.interface),
                    )
                    .on_imp(imp.id)
                    .on_scall(imp.scall),
                );
            }
            if let ParallelChoice::SwScalls(consumed) = &imp.parallel {
                if consumed.is_empty() {
                    v.push(
                        AuditViolation::new(
                            AuditCheck::ParallelLegality,
                            "software parallel code consumes no s-calls",
                        )
                        .on_imp(imp.id),
                    );
                }
                let mut sorted = consumed.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != consumed.len() {
                    v.push(
                        AuditViolation::new(
                            AuditCheck::ParallelLegality,
                            "software parallel code lists a consumed s-call twice",
                        )
                        .on_imp(imp.id),
                    );
                }
                if options.problem() == ProblemKind::Problem1 {
                    v.push(
                        AuditViolation::new(
                            AuditCheck::ParallelLegality,
                            "problem 1 forbids software-implementation parallel codes",
                        )
                        .on_imp(imp.id)
                        .on_scall(imp.scall),
                    );
                }
            }
        }

        // (a) Per-IMP gain/area re-derivation (strict mode only), and the
        // audit gain used for the path checks.
        let audit_gain = |imp: &Imp| -> Cycles {
            if rederive {
                self.rederive_gain(imp).unwrap_or(imp.gain)
            } else {
                imp.gain
            }
        };
        if rederive {
            for imp in chosen {
                if let Some(g) = self.rederive_gain(imp) {
                    if g != imp.gain {
                        v.push(
                            AuditViolation::new(
                                AuditCheck::GainDerivation,
                                format!(
                                    "stored gain {} but timing model gives {}",
                                    imp.gain.get(),
                                    g.get()
                                ),
                            )
                            .on_imp(imp.id)
                            .on_scall(imp.scall),
                        );
                    }
                }
                if let Some(a) = self.rederive_area(imp) {
                    if a != imp.interface_area {
                        v.push(
                            AuditViolation::new(
                                AuditCheck::AreaDerivation,
                                format!(
                                    "stored interface area {} but area model gives {a}",
                                    imp.interface_area
                                ),
                            )
                            .on_imp(imp.id)
                            .on_scall(imp.scall),
                        );
                    }
                }
            }
        }

        // (a) Eq. 2 — every path's required gain, from independently
        // recomputed per-path sums; plus the selection's own per-path
        // bookkeeping.
        let paths = self.instance.effective_paths();
        for path in &paths {
            let achieved: Cycles = chosen
                .iter()
                .filter(|imp| path.scalls.contains(&imp.scall))
                .map(&audit_gain)
                .sum();
            let required = options.gains().for_path(path.id);
            if achieved < required {
                v.push(
                    AuditViolation::new(
                        AuditCheck::PathGain,
                        format!(
                            "path achieves {} of required {}",
                            achieved.get(),
                            required.get()
                        ),
                    )
                    .on_path(path.id),
                );
            }
            let stored: Cycles = chosen
                .iter()
                .filter(|imp| path.scalls.contains(&imp.scall))
                .map(|imp| imp.gain)
                .sum();
            match selection.gain_per_path.iter().find(|(p, _)| *p == path.id) {
                Some(&(_, recorded)) if recorded != stored => v.push(
                    AuditViolation::new(
                        AuditCheck::InterfaceAccounting,
                        format!(
                            "selection records path gain {} but the chosen imps sum to {}",
                            recorded.get(),
                            stored.get()
                        ),
                    )
                    .on_path(path.id),
                ),
                None => v.push(
                    AuditViolation::new(
                        AuditCheck::InterfaceAccounting,
                        "selection records no gain for this path",
                    )
                    .on_path(path.id),
                ),
                Some(_) => {}
            }
        }

        // (b) Once-per-IP area accounting against the raw library.
        let mut ips: Vec<IpId> = chosen.iter().flat_map(|i| i.ips.iter().copied()).collect();
        ips.sort_unstable();
        ips.dedup();
        let mut ip_area_tenths = 0i64;
        for &ip in &ips {
            match self.instance.library.block(ip) {
                Some(block) => ip_area_tenths += block.area().tenths(),
                None => v.push(
                    AuditViolation::new(AuditCheck::IpAccounting, "chosen ip not in the library")
                        .on_ip(ip),
                ),
            }
        }
        if ip_area_tenths != selection.ip_area.tenths() {
            v.push(AuditViolation::new(
                AuditCheck::IpAccounting,
                format!(
                    "selection records ip area {} but the library sums to {} tenths \
                     over {} distinct ips",
                    selection.ip_area,
                    ip_area_tenths,
                    ips.len()
                ),
            ));
        }
        let if_area_tenths: i64 = chosen.iter().map(|i| i.interface_area.tenths()).sum();
        if if_area_tenths != selection.interface_area.tenths() {
            v.push(AuditViolation::new(
                AuditCheck::InterfaceAccounting,
                format!(
                    "selection records interface area {} but the chosen imps sum to {} tenths",
                    selection.interface_area, if_area_tenths
                ),
            ));
        }
        #[allow(clippy::cast_precision_loss)]
        let total_tenths = (ip_area_tenths + if_area_tenths) as f64;
        if (selection.objective - total_tenths).abs() > OBJECTIVE_TOL_TENTHS {
            v.push(AuditViolation::new(
                AuditCheck::ObjectiveConsistency,
                format!(
                    "objective {} diverges from re-derived total area {} tenths",
                    selection.objective, total_tenths
                ),
            ));
        }

        // (e) Hierarchy / flatten consistency.
        for imp in chosen {
            if imp.ips.is_empty() {
                v.push(
                    AuditViolation::new(
                        AuditCheck::HierarchyConsistency,
                        "imp instantiates no ips",
                    )
                    .on_imp(imp.id)
                    .on_scall(imp.scall),
                );
            }
            let mut dedup = imp.ips.clone();
            dedup.sort_unstable();
            dedup.dedup();
            if dedup.len() != imp.ips.len() {
                v.push(
                    AuditViolation::new(
                        AuditCheck::HierarchyConsistency,
                        "composite imp lists an ip twice",
                    )
                    .on_imp(imp.id)
                    .on_scall(imp.scall),
                );
            }
        }
        for spec in self.hierarchy {
            for &child in &spec.children {
                if let Some(imp) = chosen.iter().find(|i| i.scall == child) {
                    v.push(
                        AuditViolation::new(
                            AuditCheck::HierarchyConsistency,
                            format!(
                                "s-call was folded into {} but is implemented directly",
                                spec.parent
                            ),
                        )
                        .on_imp(imp.id)
                        .on_scall(child),
                    );
                }
            }
        }

        // Power budget.
        if let Some(budget) = options.power_budget() {
            let draw: u64 = chosen.iter().map(|i| i.power_mw).sum();
            if draw > budget {
                v.push(AuditViolation::new(
                    AuditCheck::PowerBudget,
                    format!("selection draws {draw} mW of budget {budget} mW"),
                ));
            }
        }

        let report = AuditReport {
            violations: v,
            checks_run: 12,
            imps_audited: chosen.len(),
            paths_audited: paths.len(),
            gain_rederived: rederive,
        };
        let sink: &dyn crate::telemetry::TelemetrySink = match self.sink {
            Some(s) => s,
            None => crate::telemetry::global(),
        };
        if sink.enabled() {
            sink.emit(&crate::telemetry::Event::AuditFinished {
                clean: report.is_clean(),
                violations: report.violations.len(),
                checks_run: report.checks_run,
                imps_audited: report.imps_audited,
                paths_audited: report.paths_audited,
                gain_rederived: report.gain_rederived,
            });
        }
        report
    }
}

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Cap branch-and-bound at this many nodes (1 exhausts immediately).
    NodeCap(usize),
    /// Impose this wall-clock deadline (zero expires at the first check).
    Deadline(Duration),
    /// Seed the warm start with this (possibly garbage) candidate.
    PoisonedHint(Vec<ImpId>),
    /// Seed the root LP with this (possibly stale or shape-mismatched)
    /// retained basis. The repair path must degrade to a cold
    /// factorization, never to a silent wrong answer.
    PoisonedBasis(std::sync::Arc<partita_ilp::Basis>),
    /// Disable the budget-exhaustion fallback backend.
    NoFallback,
    /// Disable the greedy warm start.
    NoWarmStart,
}

/// How a deliberately degraded solve ended.
#[derive(Debug)]
#[non_exhaustive]
pub enum FaultVerdict {
    /// The solve produced a feasible selection that passed the independent
    /// audit — degradation at worst cost optimality, never correctness.
    Clean(Box<Selection>, AuditReport),
    /// The solve refused with a typed error (infeasible, budget exhausted
    /// without fallback, …) — an honest failure.
    TypedError(CoreError),
    /// The solve claimed success but the audit found violations: a silent
    /// infeasible result, the failure class this harness exists to catch.
    SilentlyWrong(Box<Selection>, AuditReport),
}

impl FaultVerdict {
    /// `true` unless the solve was silently wrong.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        !matches!(self, FaultVerdict::SilentlyWrong(..))
    }
}

/// A recipe of solver degradations to inject, and the harness that proves
/// they never corrupt results.
///
/// ```
/// use partita_core::verify::FaultPlan;
/// use partita_core::{ImpDb, ImpId, Instance, RequiredGains, SCall, SolveOptions};
/// use partita_ip::{IpBlock, IpFunction};
/// use partita_interface::TransferJob;
/// use partita_mop::{AreaTenths, Cycles};
///
/// let mut instance = Instance::new("fault-demo");
/// instance.library.add(
///     IpBlock::builder("fir16").function(IpFunction::Fir)
///         .rates(4, 4).latency(8)
///         .area(AreaTenths::from_units(3)).build(),
/// );
/// let sc = instance.add_scall(
///     SCall::new("fir", IpFunction::Fir, Cycles(4000), TransferJob::new(160, 160)),
/// );
/// instance.add_path(vec![sc]);
/// let db = ImpDb::generate(&instance);
/// let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(1000)));
///
/// let verdict = FaultPlan::new()
///     .node_cap(1)
///     .poisoned_hint(vec![ImpId(999)])
///     .run(&instance, &db, &opts);
/// assert!(verdict.is_sound());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Injects a branch-and-bound node cap.
    #[must_use]
    pub fn node_cap(mut self, nodes: usize) -> FaultPlan {
        self.faults.push(Fault::NodeCap(nodes));
        self
    }

    /// Injects a wall-clock deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> FaultPlan {
        self.faults.push(Fault::Deadline(deadline));
        self
    }

    /// Injects a poisoned warm-start hint (unknown or conflicting IMP ids).
    #[must_use]
    pub fn poisoned_hint(mut self, hint: Vec<ImpId>) -> FaultPlan {
        self.faults.push(Fault::PoisonedHint(hint));
        self
    }

    /// Injects a poisoned retained root-LP basis (stale, foreign, or
    /// deliberately mismatched to the model's shape).
    #[must_use]
    pub fn poisoned_basis(
        mut self,
        basis: impl Into<std::sync::Arc<partita_ilp::Basis>>,
    ) -> FaultPlan {
        self.faults.push(Fault::PoisonedBasis(basis.into()));
        self
    }

    /// Disables the budget-exhaustion fallback.
    #[must_use]
    pub fn without_fallback(mut self) -> FaultPlan {
        self.faults.push(Fault::NoFallback);
        self
    }

    /// Disables the greedy warm start.
    #[must_use]
    pub fn without_warm_start(mut self) -> FaultPlan {
        self.faults.push(Fault::NoWarmStart);
        self
    }

    /// The injected faults, in application order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Applies the plan to a set of solve options.
    #[must_use]
    pub fn distort(&self, options: &SolveOptions) -> SolveOptions {
        let mut out = options.clone();
        for fault in &self.faults {
            out = match fault {
                Fault::NodeCap(nodes) => {
                    let budget = out.solve_budget().with_max_nodes(*nodes);
                    out.budget(budget)
                }
                Fault::Deadline(deadline) => {
                    let budget = out.solve_budget().with_deadline(*deadline);
                    out.budget(budget)
                }
                Fault::PoisonedHint(hint) => out.warm_start_hint(hint.clone()),
                Fault::PoisonedBasis(basis) => {
                    out.root_basis = Some(std::sync::Arc::clone(basis));
                    out
                }
                Fault::NoFallback => {
                    let budget = out.solve_budget().with_fallback(None);
                    out.budget(budget)
                }
                Fault::NoWarmStart => out.warm_start(false),
            };
        }
        out
    }

    /// Solves under the distorted options and classifies the outcome.
    ///
    /// The in-solver audit is disabled for the degraded solve so this
    /// harness — not an early error — observes and classifies any
    /// corruption; the audit itself runs here, against the *undistorted*
    /// requirements.
    #[must_use]
    pub fn run(
        &self,
        instance: &Instance,
        db: impl Into<std::sync::Arc<ImpDb>>,
        options: &SolveOptions,
    ) -> FaultVerdict {
        let db = db.into();
        let distorted = self.distort(options).audit(false);
        match Solver::new(instance)
            .with_imps(std::sync::Arc::clone(&db))
            .solve(&distorted)
        {
            Err(e) => FaultVerdict::TypedError(e),
            Ok(sel) => {
                let report = SelectionAuditor::new(instance, &db).audit(&sel, options);
                if report.is_clean() {
                    FaultVerdict::Clean(Box::new(sel), report)
                } else {
                    FaultVerdict::SilentlyWrong(Box::new(sel), report)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OptimalityStatus, RequiredGains, SCall};
    use partita_interface::{InterfaceKind, TransferJob};
    use partita_ip::{IpBlock, IpFunction};

    /// A generated-database instance: one fir s-call, one IP, all four
    /// interface kinds feasible.
    fn generated() -> (Instance, ImpDb) {
        let mut inst = Instance::new("gen");
        inst.library.add(
            IpBlock::builder("fir")
                .function(IpFunction::Fir)
                .rates(4, 4)
                .latency(8)
                .area(AreaTenths::from_units(3))
                .build(),
        );
        let sc = inst.add_scall(
            SCall::new(
                "fir",
                IpFunction::Fir,
                Cycles(5000),
                TransferJob::new(64, 64),
            )
            .with_freq(3)
            .with_plain_pc(Cycles(40)),
        );
        inst.add_path(vec![sc]);
        let db = ImpDb::generate(&inst);
        (inst, db)
    }

    /// A hand-built (calibrated-style) instance: stored gains do not come
    /// from the timing model.
    fn calibrated() -> (Instance, ImpDb) {
        let mut inst = Instance::new("cal");
        let ip = inst.library.add(
            IpBlock::builder("fir")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(3))
                .build(),
        );
        let mut scs = Vec::new();
        for _ in 0..3 {
            scs.push(inst.add_scall(SCall::new(
                "fir",
                IpFunction::Fir,
                Cycles(1000),
                TransferJob::new(8, 8),
            )));
        }
        inst.add_path(scs.clone());
        let db = ImpDb::from_imps(
            scs.iter()
                .map(|&sc| {
                    Imp::new(
                        sc,
                        vec![ip],
                        InterfaceKind::Type1,
                        Cycles(600),
                        AreaTenths::from_tenths(2),
                        ParallelChoice::None,
                    )
                })
                .collect(),
        );
        (inst, db)
    }

    /// The 1-node-budget trap from the solver tests: two s-calls, one
    /// 600-gain IMP each, RG 700 — the root LP's rounding misses the gain
    /// row, so a 1-node search finds no incumbent on its own.
    fn needs_two() -> (Instance, ImpDb) {
        let mut inst = Instance::new("two-needed");
        let ip = inst.library.add(
            IpBlock::builder("fir")
                .function(IpFunction::Fir)
                .area(AreaTenths::from_units(2))
                .build(),
        );
        let a = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            Cycles(1000),
            TransferJob::new(8, 8),
        ));
        let b = inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            Cycles(1000),
            TransferJob::new(8, 8),
        ));
        inst.add_path(vec![a, b]);
        let mk = |sc| {
            Imp::new(
                sc,
                vec![ip],
                InterfaceKind::Type1,
                Cycles(600),
                AreaTenths::from_tenths(2),
                ParallelChoice::None,
            )
        };
        let db = ImpDb::from_imps(vec![mk(a), mk(b)]);
        (inst, db)
    }

    fn solve(inst: &Instance, db: &ImpDb, opts: &SolveOptions) -> Selection {
        Solver::new(inst).with_imps(db.clone()).solve(opts).unwrap()
    }

    #[test]
    fn generated_db_audits_clean_with_rederivation() {
        let (inst, db) = generated();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(3000)));
        let sel = solve(&inst, &db, &opts);
        let report = SelectionAuditor::new(&inst, &db).audit(&sel, &opts);
        assert!(report.is_clean(), "{}", report.to_json());
        assert!(report.gain_rederived);
        assert_eq!(report.imps_audited, sel.chosen().len());
        assert_eq!(report.paths_audited, 1);
    }

    #[test]
    fn calibrated_db_audits_clean_in_trust_mode() {
        let (inst, db) = calibrated();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(1200)));
        let sel = solve(&inst, &db, &opts);
        let report = SelectionAuditor::new(&inst, &db).audit(&sel, &opts);
        assert!(report.is_clean(), "{}", report.to_json());
        assert!(!report.gain_rederived);
    }

    #[test]
    fn empty_selection_audits_clean() {
        let (inst, db) = calibrated();
        let opts = SolveOptions::default();
        let sel = solve(&inst, &db, &opts);
        assert!(sel.chosen().is_empty());
        let report = SelectionAuditor::new(&inst, &db).audit(&sel, &opts);
        assert!(report.is_clean(), "{}", report.to_json());
    }

    #[test]
    fn tampered_gain_is_caught_by_rederivation() {
        let (inst, db) = generated();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(3000)));
        let baseline = solve(&inst, &db, &opts);
        // Inflate the stored gain of the imp the solver picked: the timing
        // model must disagree with the tampered figure.
        let victim = baseline.chosen()[0].id;
        let imps: Vec<Imp> = db
            .imps()
            .iter()
            .map(|i| {
                let mut i = i.clone();
                if i.id == victim {
                    i.gain += Cycles(123);
                }
                i
            })
            .collect();
        let tampered_db = ImpDb::from_imps(imps);
        let sel = solve(&inst, &tampered_db, &opts);
        let report = SelectionAuditor::new(&inst, &tampered_db)
            .with_gain_policy(GainPolicy::Rederive)
            .audit(&sel, &opts);
        assert!(report
            .violations
            .iter()
            .any(|v| v.check == AuditCheck::GainDerivation));
        // Auto mode detects the inconsistency and degrades to trust.
        let auto = SelectionAuditor::new(&inst, &tampered_db).audit(&sel, &opts);
        assert!(!auto.gain_rederived);
    }

    #[test]
    fn missed_requirement_is_a_path_gain_violation() {
        let (inst, db) = calibrated();
        let low = SolveOptions::problem2(RequiredGains::uniform(Cycles(600)));
        let sel = solve(&inst, &db, &low);
        // Audit the low-requirement selection against a 1800 requirement.
        let high = SolveOptions::problem2(RequiredGains::uniform(Cycles(1800)));
        let report = SelectionAuditor::new(&inst, &db).audit(&sel, &high);
        let vio = report
            .violations
            .iter()
            .find(|v| v.check == AuditCheck::PathGain)
            .expect("path gain must be violated");
        assert_eq!(vio.path, Some(PathId(0)));
    }

    #[test]
    fn sc_pc_conflict_is_caught() {
        let (inst, _) = calibrated();
        let ip = inst.library.iter().next().unwrap().id();
        let a = CallSiteId(0);
        let b = CallSiteId(1);
        let mk = |sc, par| {
            Imp::new(
                sc,
                vec![ip],
                InterfaceKind::Type1,
                Cycles(500),
                AreaTenths::from_tenths(2),
                par,
            )
        };
        let db = ImpDb::from_imps(vec![
            mk(a, ParallelChoice::SwScalls(vec![b])),
            mk(b, ParallelChoice::None),
        ]);
        // Hand-build an illegal selection: both imps chosen.
        let sel =
            Selection::from_chosen(&inst, db.imps().to_vec(), 34.0, OptimalityStatus::Heuristic);
        let report = SelectionAuditor::new(&inst, &db).audit(&sel, &SolveOptions::default());
        assert!(report
            .violations
            .iter()
            .any(|v| v.check == AuditCheck::ScPcConflict));
    }

    #[test]
    fn parallel_code_on_bufferless_type_is_illegal() {
        let (inst, _) = calibrated();
        let ip = inst.library.iter().next().unwrap().id();
        let db = ImpDb::from_imps(vec![Imp::new(
            CallSiteId(0),
            vec![ip],
            InterfaceKind::Type0, // no buffers: no parallel execution
            Cycles(500),
            AreaTenths::from_tenths(2),
            ParallelChoice::PlainPc,
        )]);
        let sel =
            Selection::from_chosen(&inst, db.imps().to_vec(), 32.0, OptimalityStatus::Heuristic);
        let report = SelectionAuditor::new(&inst, &db).audit(&sel, &SolveOptions::default());
        assert!(report
            .violations
            .iter()
            .any(|v| v.check == AuditCheck::ParallelLegality));
    }

    #[test]
    fn hierarchy_child_implemented_directly_is_flagged() {
        let (inst, db) = calibrated();
        let specs = vec![HierSpec {
            parent: CallSiteId(0),
            children: vec![CallSiteId(1)],
        }];
        // Choose an imp for the child the flatten should have folded away.
        let child_imp = db.for_scall(CallSiteId(1))[0].clone();
        let sel = Selection::from_chosen(&inst, vec![child_imp], 32.0, OptimalityStatus::Heuristic);
        let report = SelectionAuditor::new(&inst, &db)
            .with_hierarchy(&specs)
            .audit(&sel, &SolveOptions::default());
        assert!(report
            .violations
            .iter()
            .any(|v| v.check == AuditCheck::HierarchyConsistency));
    }

    #[test]
    fn power_budget_violation_is_flagged() {
        let (inst, _) = calibrated();
        let ip = inst.library.iter().next().unwrap().id();
        let db = ImpDb::from_imps(vec![Imp::new(
            CallSiteId(0),
            vec![ip],
            InterfaceKind::Type1,
            Cycles(500),
            AreaTenths::from_tenths(2),
            ParallelChoice::None,
        )
        .with_power_mw(300)]);
        let sel =
            Selection::from_chosen(&inst, db.imps().to_vec(), 32.0, OptimalityStatus::Heuristic);
        let opts = SolveOptions::default().power_budget_mw(100);
        let report = SelectionAuditor::new(&inst, &db).audit(&sel, &opts);
        assert!(report
            .violations
            .iter()
            .any(|v| v.check == AuditCheck::PowerBudget));
    }

    #[test]
    fn report_json_is_well_formed() {
        let (inst, db) = calibrated();
        let high = SolveOptions::problem2(RequiredGains::uniform(Cycles(999_999)));
        let sel = solve(&inst, &db, &SolveOptions::default());
        let report = SelectionAuditor::new(&inst, &db).audit(&sel, &high);
        assert!(!report.is_clean());
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\"check\":\"path_gain\""));
        assert!(json.contains("\"path\":\"P0\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
        // into_result carries the rendered report.
        let err = report.into_result().unwrap_err();
        assert!(matches!(err, CoreError::AuditFailed { violations: 1, .. }));
    }

    #[test]
    fn violation_display_carries_provenance() {
        let v = AuditViolation::new(AuditCheck::PathGain, "short by 5")
            .on_path(PathId(2))
            .on_scall(CallSiteId(3));
        let s = v.to_string();
        assert!(s.contains("[path_gain]"));
        assert!(s.contains("P2"));
        assert!(s.contains("sc3"));
        assert!(s.contains("short by 5"));
    }

    #[test]
    fn fault_plan_distorts_options() {
        let opts = SolveOptions::default();
        let plan = FaultPlan::new()
            .node_cap(1)
            .deadline(Duration::ZERO)
            .poisoned_hint(vec![ImpId(999)])
            .without_fallback()
            .without_warm_start();
        assert_eq!(plan.faults().len(), 5);
        let d = plan.distort(&opts);
        assert_eq!(d.solve_budget().max_nodes, 1);
        assert_eq!(d.solve_budget().deadline, Some(Duration::ZERO));
        assert_eq!(d.solve_budget().fallback, None);
        assert_eq!(d.hint(), Some(&[ImpId(999)][..]));
        assert!(!d.warm_start_enabled());
    }

    #[test]
    fn degraded_solves_are_sound() {
        let (inst, db) = needs_two();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(700)));
        let plans = [
            FaultPlan::new().node_cap(1),
            FaultPlan::new().node_cap(1).without_warm_start(),
            FaultPlan::new()
                .node_cap(1)
                .without_warm_start()
                .without_fallback(),
            FaultPlan::new().deadline(Duration::ZERO),
            FaultPlan::new().poisoned_hint(vec![ImpId(999), ImpId(7)]),
            FaultPlan::new()
                .poisoned_hint(vec![ImpId(0), ImpId(0)])
                .node_cap(2),
        ];
        let mut typed_errors = 0;
        for plan in plans {
            let verdict = plan.run(&inst, &db, &opts);
            assert!(verdict.is_sound(), "{plan:?} produced {verdict:?}");
            if let FaultVerdict::TypedError(e) = &verdict {
                typed_errors += 1;
                assert!(matches!(
                    e,
                    CoreError::BudgetExhausted | CoreError::Infeasible { .. }
                ));
            }
        }
        // The no-fallback plan must refuse with a typed error rather than
        // hand back anything unverified.
        assert!(typed_errors >= 1);
    }

    #[test]
    fn poisoned_basis_degrades_to_cold_never_to_garbage() {
        let (inst, db) = needs_two();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(700)));
        let clean = Solver::new(&inst)
            .with_imps(&db)
            .solve(&opts)
            .expect("clean reference solve");
        // A spread of hostile bases: shape-mismatched (both too small and
        // too large), and a plausibly-shaped all-slack basis, which the
        // repair may legitimately accept — acceptance is fine, a changed
        // answer is not.
        let bases = [
            partita_ilp::Basis::slack(1, 1),
            partita_ilp::Basis::slack(200, 90),
            partita_ilp::Basis::slack(db.len() + inst.library.len(), 8),
        ];
        for basis in bases {
            let verdict = FaultPlan::new()
                .poisoned_basis(basis.clone())
                .run(&inst, &db, &opts);
            match verdict {
                FaultVerdict::Clean(sel, report) => {
                    assert!(report.is_clean());
                    assert_eq!(
                        sel.chosen(),
                        clean.chosen(),
                        "basis {basis:?} changed the answer"
                    );
                    assert_eq!(sel.total_area(), clean.total_area());
                }
                other => panic!("poisoned basis {basis:?} must degrade cleanly, got {other:?}"),
            }
        }
    }

    #[test]
    fn fallback_selection_passes_the_audit() {
        let (inst, db) = needs_two();
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles(700)));
        let verdict = FaultPlan::new()
            .node_cap(1)
            .without_warm_start()
            .run(&inst, &db, &opts);
        match verdict {
            FaultVerdict::Clean(sel, report) => {
                assert_eq!(sel.status, OptimalityStatus::FallbackUsed);
                assert!(report.is_clean());
            }
            other => panic!("expected a clean greedy fallback, got {other:?}"),
        }
    }
}
