//! Optimal S-instruction generation — the core contribution of the DAC'99
//! paper (§4): selecting the set of IPs and interface types that makes an
//! application meet per-path performance constraints at minimum area,
//! with support for concurrent kernel/IP execution.
//!
//! Pipeline:
//!
//! 1. [`Instance`] describes the problem: s-calls with software timings and
//!    profiled frequencies, the IP library, execution paths, hierarchy.
//! 2. [`ImpDb::generate`] enumerates the *implementation methods* (IMPs) of
//!    every s-call: (IP, interface type, parallel-code choice) with total
//!    gain `g_ij` and interface area `c_ij`. Databases can also be built
//!    directly from published data via [`ImpDb::from_imps`].
//! 3. [`parallel_code`] computes `PC_i` (Definitions 3–5) on the caller's
//!    CDFG, and the s-calls whose *software implementations* may serve as
//!    parallel code (the Problem 2 generalisation).
//! 4. [`hierarchy::flatten`] folds lower-level IMPs into upper-level
//!    composite IMPs (*IMP flatten*, Fig. 11).
//! 5. [`Solver`] builds the 0/1 ILP (Problem 1 with its restrictions, or the
//!    general Problem 2 with SC/SC-PC conflict constraints), minimises
//!    `Σ z_k·a_k + Σ x_ij·c_ij` through a pluggable [`engine`] backend
//!    (branch-and-bound, exhaustive, greedy, Lagrangian or conflict
//!    enumeration — or a portfolio racing the exact ones, see
//!    `docs/BACKENDS.md`) under a [`SolveBudget`],
//!    and decodes a [`Selection`] tagged with an [`OptimalityStatus`] and a
//!    full [`SolveTrace`].
//! 6. [`merge::s_instruction_count`] merges same-(IP, interface) selections
//!    into single S-instructions (the **S** column of Tables 1–3), and
//!    [`report`] renders paper-style rows.
//!
//! Baselines for the evaluation live in [`baseline`].
//!
//! # Module map
//!
//! | Module | Role | Paper anchor |
//! |---|---|---|
//! | [`instance`](Instance) / [`impdb`](ImpDb) | Problem description, IMP enumeration | §3, Defs. 1–2 |
//! | [`parallel_code`] | `PC_i` computation on the CDFG | §3, Defs. 3–5 |
//! | [`hierarchy`] | IMP flatten across call levels | §5, Fig. 11 |
//! | [`engine`] | Pluggable 0/1 ILP backends + budgets + cut policy | §4, Problems 1–2 |
//! | `backends` ([`LagrangianBackend`], [`ConflictEnumBackend`]) | Structure-exploiting implicit enumeration | §4 structure (RG rows, SC-PC conflicts) |
//! | `portfolio` ([`Backend::Portfolio`]) | Backend racing: shared bound, cancel-on-win | — (`docs/BACKENDS.md`) |
//! | [`sweep`] | RG sweeps: caching, chaining, batching | Tables 1–3, Figs. 8–11 |
//! | [`verify`] | Independent selection audit, fault injection | §4 optimality claims |
//! | [`merge`] / [`report`] | S-instruction merge, paper-style rows | Tables 1–3 (**S** column) |
//! | [`baseline`] | All-software / greedy reference points | §6 |
//! | [`telemetry`] | Structured events, sinks, trace schema | — (observability layer) |
//! | [`api`] | Versioned request/response envelope, [`ApiError`] codes | — (service surface) |
//! | [`cache`] | Bounded LRU + sharded concurrent canonical cache | — (service surface) |
//! | [`delta`] | Incremental re-solve: model patch + basis repair | §5 exploration loop |
//!
//! # Example
//!
//! ```
//! use partita_core::{Instance, SCall, ImpDb, Solver, SolveOptions, RequiredGains};
//! use partita_ip::{IpBlock, IpFunction};
//! use partita_interface::TransferJob;
//! use partita_mop::{AreaTenths, Cycles};
//!
//! # fn main() -> Result<(), partita_core::CoreError> {
//! let mut instance = Instance::new("demo");
//! let fir = instance.library.add(
//!     IpBlock::builder("fir16").function(IpFunction::Fir)
//!         .rates(4, 4).latency(8)
//!         .area(AreaTenths::from_units(3)).build(),
//! );
//! let sc0 = instance.add_scall(
//!     SCall::new("fir", IpFunction::Fir, Cycles(4000), TransferJob::new(160, 160)),
//! );
//! instance.add_path(vec![sc0]);
//! let db = ImpDb::generate(&instance);
//! let sel = Solver::new(&instance)
//!     .with_imps(db)
//!     .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(1000))))?;
//! assert!(sel.chosen().iter().any(|imp| imp.ips.contains(&fir)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
mod backends;
pub mod baseline;
mod build;
pub mod cache;
mod conflict;
pub mod delta;
pub mod engine;
mod error;
mod formulate;
pub mod hierarchy;
mod imp;
mod impdb;
mod instance;
pub mod merge;
pub mod parallel_code;
mod portfolio;
pub mod report;
mod solver;
pub mod sweep;
pub mod telemetry;
pub mod verify;

pub use api::{
    ApiError, BatchItem, Payload, Request, RequestBody, Response, SolveResult, SolveSpec,
    StatsSnapshot, API_VERSION,
};
pub use backends::{ConflictEnumBackend, LagrangianBackend};
pub use build::{instance_from_compiled, SCallBinding};
pub use cache::ShardedLru;
pub use conflict::{sc_pc_conflicts, ConflictPair};
pub use delta::{DeltaSession, InstanceDelta};
pub use engine::{
    Backend, BranchBoundBackend, CutPolicy, EngineSolution, ExhaustiveBackend, GreedyBackend,
    OptimalityStatus, SolveBudget, SolveTrace, SolverBackend,
};
pub use error::CoreError;
pub use imp::{Imp, ImpId, ParallelChoice};
pub use impdb::ImpDb;
pub use instance::{Instance, PathSpec, SCall};
pub use solver::{ProblemKind, RequiredGains, Selection, SolveOptions, Solver};
pub use sweep::{BatchJob, SweepPoint, SweepSession, SweepTrace};
pub use telemetry::{
    Event, EventKind, JsonLinesSink, NullSink, RecordingSink, Redaction, TelemetrySink,
};
pub use verify::{
    AuditCheck, AuditReport, AuditViolation, Fault, FaultPlan, FaultVerdict, GainPolicy,
    SelectionAuditor,
};
