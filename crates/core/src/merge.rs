//! S-instruction merging (paper §5: "s-calls to be implemented in the same
//! way, i.e., the same IP and the same interface method, can be merged and
//! implemented in a single S-instruction").

use std::collections::BTreeMap;

use partita_interface::InterfaceKind;
use partita_ip::IpId;

use crate::Imp;

/// A merged S-instruction: one (IP set, interface) shape and the s-calls it
/// serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SInstruction {
    /// The IPs instantiated by the instruction.
    pub ips: Vec<IpId>,
    /// The interface type.
    pub interface: InterfaceKind,
    /// The s-calls merged into this instruction.
    pub scalls: Vec<partita_mop::CallSiteId>,
}

/// Groups chosen IMPs into S-instructions.
#[must_use]
pub fn merge(chosen: &[Imp]) -> Vec<SInstruction> {
    let mut groups: BTreeMap<(Vec<IpId>, usize), Vec<partita_mop::CallSiteId>> = BTreeMap::new();
    for imp in chosen {
        let mut ips = imp.ips.clone();
        ips.sort_unstable();
        groups
            .entry((ips, imp.interface.index()))
            .or_default()
            .push(imp.scall);
    }
    groups
        .into_iter()
        .map(|((ips, kind_idx), scalls)| SInstruction {
            ips,
            interface: InterfaceKind::ALL[kind_idx],
            scalls,
        })
        .collect()
}

/// The paper's **S** column: number of S-instructions after merging.
#[must_use]
pub fn s_instruction_count(chosen: &[Imp]) -> usize {
    merge(chosen).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParallelChoice;
    use partita_mop::{AreaTenths, CallSiteId, Cycles};

    fn imp(sc: u32, ip: u32, kind: InterfaceKind) -> Imp {
        Imp::new(
            CallSiteId(sc),
            vec![IpId(ip)],
            kind,
            Cycles(1),
            AreaTenths::ZERO,
            ParallelChoice::None,
        )
    }

    #[test]
    fn same_ip_same_interface_merge() {
        // Table 1 row 3: four s-calls on IP12/IF0 merge into one S-instruction.
        let chosen = vec![
            imp(7, 12, InterfaceKind::Type0),
            imp(9, 12, InterfaceKind::Type0),
            imp(11, 12, InterfaceKind::Type0),
            imp(13, 12, InterfaceKind::Type0),
        ];
        let merged = merge(&chosen);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].scalls.len(), 4);
        assert_eq!(s_instruction_count(&chosen), 1);
    }

    #[test]
    fn different_interface_does_not_merge() {
        let chosen = vec![
            imp(1, 12, InterfaceKind::Type0),
            imp(2, 12, InterfaceKind::Type2),
        ];
        assert_eq!(s_instruction_count(&chosen), 2);
    }

    #[test]
    fn different_ip_does_not_merge() {
        let chosen = vec![
            imp(1, 12, InterfaceKind::Type0),
            imp(2, 13, InterfaceKind::Type0),
        ];
        assert_eq!(s_instruction_count(&chosen), 2);
    }

    #[test]
    fn empty_selection() {
        assert_eq!(s_instruction_count(&[]), 0);
        assert!(merge(&[]).is_empty());
    }
}
