//! The racing solver portfolio ([`crate::Backend::Portfolio`]).
//!
//! One race runs every configured racer concurrently on the same model,
//! wired together through two shared primitives:
//!
//! * an [`partita_ilp::SharedBound`] — every racer publishes each incumbent
//!   it installs, and every racer prunes against the best published score,
//!   so one backend's progress tightens the others' searches;
//! * a cancel flag — the first racer to produce a *conclusive* result
//!   (an audit-clean proven optimum, or a proof of infeasibility) wins the
//!   race and cancels the rest.
//!
//! When the race ends without a winner (every racer ran out of budget),
//! the best incumbent across racers is returned with its own honest
//! [`crate::OptimalityStatus`] — never upgraded to optimal.
//!
//! # Determinism
//!
//! *Which racer wins* is timing-dependent, but the returned **selection**
//! is not: every exact backend honours the shared tie-break contract
//! (`docs/BACKENDS.md`), so all conclusive results are byte-identical, and
//! budget-exhausted incumbents are compared with the same
//! `(score, lexicographic)` rule the backends use internally. Telemetry is
//! emitted after every racer has joined, in racer-configuration order, so
//! the event *sequence* is reproducible even though per-racer outcomes
//! (`optimal` vs `cancelled`) may vary run to run.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use partita_ilp::cuts::CutSeparator;
use partita_ilp::{lex_less, Model, SharedBound};

use crate::engine::{
    Backend, BranchBoundBackend, EngineSolution, ExhaustiveBackend, GreedyBackend, SolverBackend,
};
use crate::formulate::{decode, VarMap};
use crate::solver::{Selection, SolveOptions};
use crate::telemetry::{Event, TelemetrySink};
use crate::{
    ConflictEnumBackend, CoreError, Imp, ImpDb, Instance, LagrangianBackend, SelectionAuditor,
};

/// The default racer line-up: branch-and-bound (the all-rounder, given the
/// budget's threads) plus the two single-threaded enumeration backends.
pub(crate) const DEFAULT_RACERS: [Backend; 3] = [
    Backend::BranchBound,
    Backend::ConflictEnum,
    Backend::Lagrangian,
];

/// One racer's outcome, kept for post-join arbitration and telemetry.
struct RacerReport {
    backend: Backend,
    result: Result<EngineSolution, CoreError>,
    wall: Duration,
}

impl RacerReport {
    /// The snake_case outcome tag of the `backend_finished` event.
    fn outcome(&self) -> &'static str {
        match &self.result {
            Ok(sol) if sol.status.is_optimal() => "optimal",
            Ok(sol) if sol.status == crate::OptimalityStatus::Heuristic => "heuristic",
            Ok(_) => "incumbent",
            Err(CoreError::Infeasible { .. }) => "infeasible",
            Err(CoreError::BudgetExhausted) => "exhausted",
            Err(_) => "error",
        }
    }
}

/// Runs one racer to completion. Every supported backend accepts the shared
/// cancel flag; the exact ones also publish/consume the shared bound.
#[allow(clippy::too_many_arguments)]
fn run_racer(
    backend: Backend,
    instance: &Instance,
    db: &ImpDb,
    options: &SolveOptions,
    model: &Model,
    map: &VarMap,
    seeds: &[Vec<f64>],
    node_cuts: Option<Arc<CutSeparator>>,
    cancel: Arc<AtomicBool>,
    bound: Arc<SharedBound>,
) -> Result<EngineSolution, CoreError> {
    let budget = &options.budget;
    match backend {
        Backend::BranchBound => BranchBoundBackend {
            seeds: seeds.to_vec(),
            root_basis: options.root_basis.clone(),
            cancel: Some(cancel),
            shared_bound: Some(bound),
            node_cuts,
        }
        .solve(model, budget),
        Backend::Exhaustive => ExhaustiveBackend {
            cancel: Some(cancel),
        }
        .solve(model, budget),
        Backend::Greedy => {
            GreedyBackend::new(instance, db, &options.gains, map).solve(model, budget)
        }
        Backend::Lagrangian => LagrangianBackend::new(instance, db, &options.gains, map)
            .with_seeds(seeds.to_vec())
            .with_cancel(cancel)
            .with_shared_bound(bound)
            .solve(model, budget),
        Backend::ConflictEnum => ConflictEnumBackend::new(instance, db, &options.gains, map)
            .with_seeds(seeds.to_vec())
            .with_cancel(cancel)
            .with_shared_bound(bound)
            .solve(model, budget),
        // A nested race would deadlock on nothing interesting; the racer
        // list is sanitised before spawning, so this is unreachable.
        Backend::Portfolio => Err(CoreError::BudgetExhausted),
    }
}

/// `true` when this result settles the race: a proof of infeasibility, or a
/// proven optimum whose decoded selection passes the independent audit.
///
/// The audit runs *inside the racer thread*, before the cancel broadcast:
/// an exact backend with a latent decode/accounting bug can never win a
/// race and silence the correct backends.
fn conclusive(
    result: &Result<EngineSolution, CoreError>,
    instance: &Instance,
    db: &ImpDb,
    map: &VarMap,
    options: &SolveOptions,
) -> bool {
    match result {
        Err(CoreError::Infeasible { .. }) => true,
        Ok(sol) if sol.status.is_optimal() => {
            let ilp = partita_ilp::IlpSolution {
                objective: sol.objective,
                values: sol.values.clone(),
            };
            let chosen: Vec<Imp> = decode(db, map, &ilp)
                .iter()
                .filter_map(|id| db.get(*id).cloned())
                .collect();
            let selection = Selection::from_chosen(instance, chosen, sol.objective, sol.status);
            SelectionAuditor::new(instance, db)
                .audit(&selection, options)
                .is_clean()
        }
        _ => false,
    }
}

/// Races the configured backends and returns the accepted solution plus the
/// backend that produced it.
///
/// # Errors
///
/// [`CoreError::BudgetExhausted`] when every racer exhausted its budget with
/// no incumbent to show (the caller's fallback policy then applies, exactly
/// as for a single backend).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_race(
    instance: &Instance,
    db: &ImpDb,
    options: &SolveOptions,
    model: &Model,
    map: &VarMap,
    seeds: &[Vec<f64>],
    node_cuts: Option<Arc<CutSeparator>>,
    sink: &dyn TelemetrySink,
) -> Result<(EngineSolution, Backend), CoreError> {
    let racers: Vec<Backend> = options
        .racers
        .clone()
        .unwrap_or_else(|| DEFAULT_RACERS.to_vec())
        .into_iter()
        .filter(|b| *b != Backend::Portfolio)
        .collect();
    if racers.is_empty() {
        return Err(CoreError::BudgetExhausted);
    }

    let cancel = Arc::new(AtomicBool::new(false));
    let bound = Arc::new(SharedBound::new());
    // Index of the first conclusive racer (usize::MAX = still open).
    let winner = AtomicUsize::new(usize::MAX);
    let started = Instant::now();

    let mut reports: Vec<RacerReport> = Vec::with_capacity(racers.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = racers
            .iter()
            .enumerate()
            .map(|(index, &backend)| {
                let cancel = Arc::clone(&cancel);
                let bound = Arc::clone(&bound);
                let winner = &winner;
                let node_cuts = node_cuts.clone();
                scope.spawn(move || {
                    let result = run_racer(
                        backend,
                        instance,
                        db,
                        options,
                        model,
                        map,
                        seeds,
                        node_cuts,
                        Arc::clone(&cancel),
                        bound,
                    );
                    if conclusive(&result, instance, db, map, options)
                        && winner
                            .compare_exchange(
                                usize::MAX,
                                index,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                    {
                        cancel.store(true, Ordering::Release);
                    }
                    RacerReport {
                        backend,
                        result,
                        wall: started.elapsed(),
                    }
                })
            })
            .collect();
        for handle in handles {
            // A panicking racer poisons nothing shared; propagate it.
            reports.push(handle.join().expect("racer thread panicked"));
        }
    });
    let race_wall = started.elapsed();
    let won = winner.load(Ordering::Acquire);

    if sink.enabled() {
        for report in &reports {
            sink.emit(&Event::BackendFinished {
                backend: report.backend,
                outcome: report.outcome().to_string(),
                nodes_explored: report
                    .result
                    .as_ref()
                    .map_or(0, |sol| sol.effort.nodes_explored),
                wall: report.wall,
            });
        }
        sink.emit(&Event::RaceWon {
            winner: reports.get(won).map(|r| r.backend),
            racers: reports.len(),
            wall: race_wall,
        });
    }

    if let Some(report) = reports.get_mut(won) {
        let backend = report.backend;
        return std::mem::replace(&mut report.result, Err(CoreError::BudgetExhausted))
            .map(|sol| (sol, backend));
    }

    // No conclusive winner: hand back the best incumbent under the same
    // (score, lexicographic) rule the backends use, with its honest status.
    let mut best: Option<(EngineSolution, Backend)> = None;
    for report in reports {
        let Ok(sol) = report.result else { continue };
        let better = match &best {
            None => true,
            Some((incumbent, _)) => {
                sol.objective < incumbent.objective - 1e-9
                    || (sol.objective <= incumbent.objective + 1e-9
                        && lex_less(&sol.values, &incumbent.values))
            }
        };
        if better {
            best = Some((sol, report.backend));
        }
    }
    best.ok_or(CoreError::BudgetExhausted)
}
