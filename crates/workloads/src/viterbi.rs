//! Viterbi-decoder workload family (rate-1/2, constraint-length-7
//! convolutional code, 64 trellis states — the GSM-class channel decoder).
//!
//! The decoder's hot loop is the textbook split: per received symbol the
//! **metric path** computes branch metrics (a correlation against the two
//! generator polynomials), runs the add-compare-select butterflies over the
//! trellis and renormalises the path metrics; once per frame the **decode
//! path** walks the survivor memory backwards. ACS dominates — it runs once
//! per trellis segment — so the library carries two ACS arrays at different
//! width/area points (IMP fan-out), plus an M-IP that fuses ACS with the
//! renormalisation subtract.
//!
//! The even/odd ACS halves are data-independent, so the even half may run
//! the odd half's software implementation as parallel code (a Problem 2
//! SC-PC conflict source, like the paper's `IMP24`/`IMP25` pair).
//!
//! [`workload`] is the calibrated canonical instance; [`variant`] jitters
//! magnitudes (software times, frequencies, latencies, areas) by ±10 %
//! while keeping the structure fixed, which is how the corpus manifest
//! enumerates the family.

use rand::rngs::StdRng;
use rand::SeedableRng;

use partita_core::{ImpDb, Instance, SCall};
use partita_interface::TransferJob;
use partita_ip::{IpBlock, IpFunction};
use partita_mop::{AreaTenths, Cycles};

use crate::{achievable_rg_sweep, jitter, jitter_freq, Workload};

fn acs() -> IpFunction {
    IpFunction::Custom("acs".into())
}

fn survivor() -> IpFunction {
    IpFunction::Custom("survivor".into())
}

fn traceback() -> IpFunction {
    IpFunction::Custom("traceback".into())
}

/// The canonical calibrated instance (identical to [`variant`]`(0)`).
#[must_use]
pub fn workload() -> Workload {
    variant(0)
}

/// A seeded family member: same structure, ±10 % magnitudes.
#[must_use]
pub fn variant(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5649_5445_5242_4931); // "VITERBI1"
    let mut instance = Instance::new(format!("viterbi_{seed}"));

    // --- library -----------------------------------------------------
    instance.library.add(
        IpBlock::builder("bmu_corr")
            .function(IpFunction::Correlator)
            .ports(2, 1)
            .rates(2, 2)
            .latency(jitter(&mut rng, 4) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 120) as i64))
            .build(),
    );
    // Two ACS arrays: a narrow bufferless-capable one and a wide one that
    // needs buffered interfaces (3 ports) — fan-out with a real trade-off.
    instance.library.add(
        IpBlock::builder("acs_array4")
            .function(acs())
            .ports(2, 2)
            .rates(1, 1)
            .latency(jitter(&mut rng, 6) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 180) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("acs_array8")
            .function(acs())
            .ports(3, 3)
            .rates(1, 1)
            .latency(jitter(&mut rng, 4) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 320) as i64))
            .build(),
    );
    // M-IP: ACS fused with the metric renormalisation subtract.
    instance.library.add(
        IpBlock::builder("acs_norm")
            .function(acs())
            .function(IpFunction::Quantizer)
            .ports(2, 2)
            .rates(2, 2)
            .latency(jitter(&mut rng, 8) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 260) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("survivor_ctrl")
            .function(survivor())
            .ports(2, 1)
            .rates(2, 2)
            .latency(jitter(&mut rng, 8) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 90) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("trellis_walker")
            .function(traceback())
            .ports(1, 1)
            .rates(4, 4)
            .latency(jitter(&mut rng, 16) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 110) as i64))
            .build(),
    );

    // --- s-calls (per 20 ms frame; freq = invocations on the hot run) ---
    let branch_metric = instance.add_scall(
        SCall::new(
            "branch_metric",
            IpFunction::Correlator,
            Cycles(jitter(&mut rng, 6_000)),
            TransferJob::new(128, 64),
        )
        .with_freq(jitter_freq(&mut rng, 8))
        .with_plain_pc(Cycles(jitter(&mut rng, 200))),
    );
    let acs_even = instance.add_scall(
        SCall::new(
            "acs_even",
            acs(),
            Cycles(jitter(&mut rng, 24_000)),
            TransferJob::new(256, 256),
        )
        .with_freq(jitter_freq(&mut rng, 8)),
    );
    let acs_odd = instance.add_scall(
        SCall::new(
            "acs_odd",
            acs(),
            Cycles(jitter(&mut rng, 24_000)),
            TransferJob::new(256, 256),
        )
        .with_freq(jitter_freq(&mut rng, 8)),
    );
    // The even half may run the odd half in software as parallel code.
    instance.scalls[acs_even.index()].sw_pc_candidates = vec![acs_odd];
    let normalize = instance.add_scall(
        SCall::new(
            "normalize",
            IpFunction::Quantizer,
            Cycles(jitter(&mut rng, 3_000)),
            TransferJob::new(128, 128),
        )
        .with_freq(jitter_freq(&mut rng, 2)),
    );
    let survivor_update = instance.add_scall(
        SCall::new(
            "survivor_update",
            survivor(),
            Cycles(jitter(&mut rng, 9_000)),
            TransferJob::new(256, 64),
        )
        .with_freq(jitter_freq(&mut rng, 8)),
    );
    let walk = instance.add_scall(
        SCall::new(
            "traceback",
            traceback(),
            Cycles(jitter(&mut rng, 30_000)),
            TransferJob::new(64, 32),
        )
        .with_plain_pc(Cycles(jitter(&mut rng, 400))),
    );

    // Per-symbol metric path vs once-per-frame decode path: a uniform RG
    // binds each separately (paper-style per-path timing).
    instance.add_path(vec![branch_metric, acs_even, acs_odd, normalize]);
    instance.add_path(vec![survivor_update, walk]);

    let imps = ImpDb::generate(&instance);
    let rg_sweep = achievable_rg_sweep(&instance, &imps);
    Workload {
        instance: std::sync::Arc::new(instance),
        imps: std::sync::Arc::new(imps),
        rg_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_core::{RequiredGains, SelectionAuditor, SolveOptions, Solver};

    #[test]
    fn canonical_shape() {
        let w = workload();
        assert_eq!(w.instance.scalls.len(), 6);
        assert_eq!(w.instance.library.len(), 6);
        assert_eq!(w.instance.paths.len(), 2);
        assert!(!w.imps.is_empty());
        // The ACS halves see both arrays plus the fused M-IP.
        let acs_imps = w.imps.for_scall(w.instance.scalls[1].id);
        let ips: std::collections::BTreeSet<_> = acs_imps
            .iter()
            .flat_map(|i| i.ips.iter().copied())
            .collect();
        assert!(ips.len() >= 3, "ACS fan-out collapsed: {ips:?}");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(variant(3).imps.imps(), variant(3).imps.imps());
        assert_ne!(variant(3).imps.imps(), variant(4).imps.imps());
    }

    #[test]
    fn sweep_points_solve_and_audit_clean() {
        for seed in [0, 9] {
            let w = variant(seed);
            for &rg in &w.rg_sweep {
                let opts = SolveOptions::problem2(RequiredGains::uniform(rg));
                let sel = Solver::new(&w.instance)
                    .with_imps(w.imps.clone())
                    .solve(&opts)
                    .expect("achievable sweep point");
                let report = SelectionAuditor::new(&w.instance, &w.imps).audit(&sel, &opts);
                assert!(report.is_clean(), "seed {seed}: {}", report.to_json());
            }
        }
    }
}
