//! The committed instance corpus: the population of workloads every
//! correctness gate iterates, pinned by `tests/corpus/manifest.json`.
//!
//! The corpus has two halves that must never drift apart:
//!
//! * [`population`] — the list of `(family, preset, seed)` specs defined
//!   *in code* (synth presets × seed ranges plus the four DSP families);
//! * the **manifest** — the committed JSON file listing the same specs
//!   together with each workload's content [`digest`].
//!
//! The gates load the manifest ([`manifest`]), rebuild each entry
//! ([`ManifestEntry::build`]) and check the digest: a generator change that
//! silently alters any corpus instance fails the gate until the manifest is
//! regenerated (`cargo run --release -p partita-bench --bin corpus`) and the
//! diff reviewed. `manifest == population` is itself asserted, so adding a
//! family or widening a seed range is a two-line change here plus a
//! regeneration.
//!
//! Entries marked `gated` (the `x100` preset) are skipped unless
//! `PARTITA_CORPUS_X100=1`: optimal solves are out of reach at that scale,
//! so the gated leg checks generation, digest, the greedy baseline and the
//! independent audit instead.

use partita_core::telemetry::json::JsonValue;

use crate::{adpcm, fft_radix4, lms, synth, viterbi, Workload};

/// The committed manifest, embedded so the gates need no path plumbing.
pub const MANIFEST_JSON: &str = include_str!("../../../tests/corpus/manifest.json");

/// Manifest schema version (bump on incompatible format changes).
pub const MANIFEST_SCHEMA: u64 = 1;

/// One corpus member in code form: what to build, not yet what to expect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Family name: `synth`, `viterbi`, `adpcm`, `lms` or `fft_radix4`.
    pub family: &'static str,
    /// Synth preset name; empty for the DSP families.
    pub preset: &'static str,
    /// Generator seed.
    pub seed: u64,
    /// Skipped unless `PARTITA_CORPUS_X100=1` (scale beyond optimal
    /// solves).
    pub gated: bool,
}

impl CorpusSpec {
    /// Stable entry id, e.g. `synth-small-0007` or `viterbi-0003`.
    #[must_use]
    pub fn id(&self) -> String {
        if self.preset.is_empty() {
            format!("{}-{:04}", self.family, self.seed)
        } else {
            format!("{}-{}-{:04}", self.family, self.preset, self.seed)
        }
    }

    /// Builds the workload this spec describes.
    ///
    /// # Errors
    ///
    /// A description of the unknown family/preset or degenerate parameters.
    pub fn build(&self) -> Result<Workload, String> {
        build_workload(self.family, self.preset, self.seed)
    }
}

/// The corpus population: every gate iterates exactly this list (the
/// manifest pins its digests). Ungated entries stay comfortably above the
/// 200-instance floor the differential and audit gates assert.
#[must_use]
pub fn population() -> Vec<CorpusSpec> {
    let mut specs = Vec::new();
    let mut synth_range = |preset: &'static str, seeds: u64, gated: bool| {
        for seed in 0..seeds {
            specs.push(CorpusSpec {
                family: "synth",
                preset,
                seed,
                gated,
            });
        }
    };
    // The micro preset feeds the exhaustive-oracle differential gate; the
    // larger presets stress the branch-and-bound tree.
    synth_range("micro", 30, false);
    synth_range("small", 60, false);
    synth_range("table", 20, false);
    synth_range("x10", 4, false);
    synth_range("x100", 2, true);
    for family in ["viterbi", "adpcm", "lms", "fft_radix4"] {
        for seed in 0..40 {
            specs.push(CorpusSpec {
                family,
                preset: "",
                seed,
                gated: false,
            });
        }
    }
    specs
}

fn build_workload(family: &str, preset: &str, seed: u64) -> Result<Workload, String> {
    match family {
        "synth" => {
            let params = synth::SynthParams::preset(preset)
                .ok_or_else(|| format!("unknown synth preset {preset:?}"))?
                .with_seed(seed);
            synth::try_generate(params).map_err(|e| format!("synth {preset}/{seed}: {e}"))
        }
        "viterbi" => Ok(viterbi::variant(seed)),
        "adpcm" => Ok(adpcm::variant(seed)),
        "lms" => Ok(lms::variant(seed)),
        "fft_radix4" => Ok(fft_radix4::variant(seed)),
        other => Err(format!("unknown corpus family {other:?}")),
    }
}

/// FNV-1a content digest of a workload: instance (s-calls, library, paths,
/// area model), IMP database (including the active mask) and RG sweep, via
/// their derived `Debug` forms — every field is integral, so the dump is
/// platform-stable. Any change a solver could observe changes the digest.
#[must_use]
pub fn digest(w: &Workload) -> u64 {
    let dump = format!("{:?}|{:?}|{:?}", w.instance, w.imps, w.rg_sweep);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in dump.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One parsed manifest entry: a [`CorpusSpec`] plus the pinned digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Stable entry id (see [`CorpusSpec::id`]).
    pub id: String,
    /// Family name.
    pub family: String,
    /// Synth preset (empty for the DSP families).
    pub preset: String,
    /// Generator seed.
    pub seed: u64,
    /// Env-gated scale entry.
    pub gated: bool,
    /// Expected [`digest`] of the rebuilt workload.
    pub digest: u64,
}

impl ManifestEntry {
    /// Rebuilds the workload this entry describes (no digest check).
    ///
    /// # Errors
    ///
    /// A description of the unknown family/preset or degenerate parameters.
    pub fn build(&self) -> Result<Workload, String> {
        build_workload(&self.family, &self.preset, self.seed)
    }

    /// Rebuilds the workload and checks it against the pinned digest.
    ///
    /// # Errors
    ///
    /// The build error, or a digest mismatch naming the entry.
    pub fn verify(&self) -> Result<Workload, String> {
        let w = self.build()?;
        let got = digest(&w);
        if got != self.digest {
            return Err(format!(
                "{}: digest mismatch (manifest {:016x}, rebuilt {:016x}) — \
                 regenerate tests/corpus/manifest.json if the change is intended",
                self.id, self.digest, got
            ));
        }
        Ok(w)
    }
}

/// Parses the embedded manifest.
///
/// # Errors
///
/// A description of the first malformed field (offset-bearing for JSON
/// syntax errors).
pub fn manifest() -> Result<Vec<ManifestEntry>, String> {
    parse_manifest(MANIFEST_JSON)
}

/// Parses a manifest document (exposed for the regeneration binary's
/// round-trip test).
///
/// # Errors
///
/// A description of the first malformed field.
pub fn parse_manifest(text: &str) -> Result<Vec<ManifestEntry>, String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_u64)
        .ok_or("manifest missing numeric \"schema\"")?;
    if schema != MANIFEST_SCHEMA {
        return Err(format!(
            "manifest schema {schema} unsupported (expected {MANIFEST_SCHEMA})"
        ));
    }
    let entries = match doc.get("entries") {
        Some(JsonValue::Array(items)) => items,
        _ => return Err("manifest missing \"entries\" array".into()),
    };
    let mut out = Vec::with_capacity(entries.len());
    for (i, item) in entries.iter().enumerate() {
        let field = |key: &str| {
            item.get(key)
                .ok_or_else(|| format!("entry {i}: missing {key:?}"))
        };
        let s = |key: &str| -> Result<String, String> {
            field(key)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("entry {i}: {key:?} must be a string"))
        };
        let digest_hex = s("digest")?;
        let digest = u64::from_str_radix(&digest_hex, 16)
            .map_err(|e| format!("entry {i}: bad digest {digest_hex:?}: {e}"))?;
        out.push(ManifestEntry {
            id: s("id")?,
            family: s("family")?,
            preset: s("preset")?,
            seed: field("seed")?
                .as_u64()
                .ok_or_else(|| format!("entry {i}: \"seed\" must be a u64"))?,
            gated: field("gated")?
                .as_bool()
                .ok_or_else(|| format!("entry {i}: \"gated\" must be a bool"))?,
            digest,
        });
    }
    Ok(out)
}

/// Renders entries as the committed manifest document (stable formatting,
/// one entry per line, trailing newline).
#[must_use]
pub fn render_manifest(entries: &[ManifestEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"family\": \"{}\", \"preset\": \"{}\", \
             \"seed\": {}, \"gated\": {}, \"digest\": \"{:016x}\"}}{}\n",
            e.id,
            e.family,
            e.preset,
            e.seed,
            e.gated,
            e.digest,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Rebuilds the whole population and computes fresh digests — what the
/// `corpus` regeneration binary writes out.
///
/// # Panics
///
/// If any population spec fails to build (a population bug, not an input
/// condition).
#[must_use]
pub fn regenerate() -> Vec<ManifestEntry> {
    population()
        .iter()
        .map(|spec| {
            let w = spec
                .build()
                .unwrap_or_else(|e| panic!("population spec {} failed: {e}", spec.id()));
            ManifestEntry {
                id: spec.id(),
                family: spec.family.to_string(),
                preset: spec.preset.to_string(),
                seed: spec.seed,
                gated: spec.gated,
                digest: digest(&w),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_large_duplicate_free_and_mostly_ungated() {
        let pop = population();
        let ungated = pop.iter().filter(|s| !s.gated).count();
        assert!(ungated >= 200, "{ungated} ungated entries");
        let mut ids: Vec<String> = pop.iter().map(CorpusSpec::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), pop.len(), "duplicate corpus ids");
        for family in ["synth", "viterbi", "adpcm", "lms", "fft_radix4"] {
            assert!(pop.iter().any(|s| s.family == family), "{family} missing");
        }
    }

    #[test]
    fn digest_is_content_sensitive_and_stable() {
        let a = viterbi::variant(1);
        assert_eq!(digest(&a), digest(&viterbi::variant(1)));
        assert_ne!(digest(&a), digest(&viterbi::variant(2)));
        assert_ne!(digest(&a), digest(&adpcm::variant(1)));
    }

    #[test]
    fn manifest_round_trips_through_render_and_parse() {
        let entries = vec![
            ManifestEntry {
                id: "synth-small-0000".into(),
                family: "synth".into(),
                preset: "small".into(),
                seed: 0,
                gated: false,
                digest: 0x0123_4567_89ab_cdef,
            },
            ManifestEntry {
                id: "lms-0007".into(),
                family: "lms".into(),
                preset: String::new(),
                seed: 7,
                gated: true,
                digest: u64::MAX,
            },
        ];
        let parsed = parse_manifest(&render_manifest(&entries)).expect("round trip");
        assert_eq!(parsed, entries);
    }

    #[test]
    fn unknown_specs_are_typed_errors() {
        assert!(build_workload("mpeg", "", 0).is_err());
        assert!(build_workload("synth", "huge", 0).is_err());
        let bad = ManifestEntry {
            id: "viterbi-0000".into(),
            family: "viterbi".into(),
            preset: String::new(),
            seed: 0,
            gated: false,
            digest: 1,
        };
        let err = bad.verify().expect_err("digest cannot be 1");
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn committed_manifest_matches_population() {
        let entries = manifest().expect("committed manifest parses");
        let pop = population();
        assert_eq!(
            entries.len(),
            pop.len(),
            "manifest entry count diverged from the population — regenerate"
        );
        for (e, s) in entries.iter().zip(&pop) {
            assert_eq!(e.id, s.id(), "manifest order diverged");
            assert_eq!(e.family, s.family);
            assert_eq!(e.preset, s.preset);
            assert_eq!(e.seed, s.seed);
            assert_eq!(e.gated, s.gated);
        }
    }
}
