//! A small Partita-C program exercising the full pipeline:
//! compile → profile → parallel-code analysis → instance → solve.

use partita_asip::{ExecOptions, Kernel};
use partita_core::{parallel_code, ImpDb, Instance, SCall};
use partita_frontend::{compile, profile, CompiledProgram};
use partita_interface::TransferJob;
use partita_ip::{IpBlock, IpFunction};
use partita_mop::{AreaTenths, Cycles, FuncId};

use crate::Workload;

/// The toy codec source: two filter stages over disjoint memory regions
/// (each other's parallel-code candidates) and a dependent post-pass.
#[must_use]
pub fn source() -> &'static str {
    "
    xmem samples[16] @ 0;
    ymem filtered[16] @ 0;
    xmem weights[16] @ 32;
    ymem output[16] @ 32;

    fn fir() reads samples writes filtered {
        let acc = 0;
        let i = 0;
        while (i < 16) {
            acc = acc + samples[i];
            filtered[i] = acc;
            i = i + 1;
        }
    }

    fn weight() reads weights writes output {
        let i = 0;
        while (i < 16) {
            output[i] = weights[i] * 3;
            i = i + 1;
        }
    }

    fn post() reads filtered, output writes filtered {
        let i = 0;
        while (i < 16) {
            filtered[i] = filtered[i] + output[i];
            i = i + 1;
        }
    }

    fn main() {
        fir();
        weight();
        post();
    }
    "
}

/// Compiles and profiles the toy program on typical input data.
///
/// # Panics
///
/// Panics only if the embedded source regresses (guarded by tests).
#[must_use]
pub fn compiled() -> (CompiledProgram, Kernel) {
    let mut compiled = compile(source()).expect("toy source compiles");
    let mut kernel = Kernel::new(256, 256);
    let samples: Vec<i32> = (0..16).map(|i| (i * 7 % 13) - 6).collect();
    let weights: Vec<i32> = (0..16).map(|i| i + 1).collect();
    kernel.xdm.load(0, &samples).expect("layout fits");
    kernel.xdm.load(32, &weights).expect("layout fits");
    profile(&mut compiled, &mut kernel, &ExecOptions::default()).expect("toy program runs");
    (compiled, kernel)
}

/// Builds a selection instance from the compiled program: s-call software
/// times from the profile, parallel-code data from the CDFG analysis, and a
/// two-entry IP library.
#[must_use]
pub fn workload() -> Workload {
    let (compiled, _) = compiled();
    let mut instance = Instance::new("toy_codec");
    instance.library.add(
        IpBlock::builder("fir16")
            .function(IpFunction::Fir)
            .rates(4, 4)
            .latency(8)
            .area(AreaTenths::from_units(3))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("scaler")
            .function(IpFunction::Quantizer)
            .rates(4, 4)
            .latency(4)
            .area(AreaTenths::from_units(2))
            .build(),
    );

    let main = compiled
        .program
        .function_by_name("main")
        .expect("toy has main");
    let infos = parallel_code::analyze_function(&compiled, main).expect("parallel-code analysis");
    let func = compiled.program.function(main).expect("main exists");

    let mut ids = Vec::new();
    for ((mop, info), (name, ipfunc)) in infos.iter().zip([
        ("fir", IpFunction::Fir),
        ("weight", IpFunction::Quantizer),
        ("post", IpFunction::Custom("post".into())),
    ]) {
        let callee = func
            .mop(*mop)
            .ok()
            .and_then(|m| m.callee())
            .unwrap_or(FuncId(0));
        let sw = compiled
            .program
            .function(callee)
            .map(|f| f.profiled_cycles())
            .unwrap_or(Cycles(1));
        let sc = SCall::new(name, ipfunc, sw, TransferJob::new(32, 32)).with_plain_pc(info.cycles);
        ids.push(instance.add_scall(sc));
    }
    instance.add_path(ids.clone());
    // fir and weight touch disjoint regions: each may serve as the other's
    // software parallel code (found by the analysis, wired here).
    let fir_candidates = infos[0].1.sw_candidate_mops.len();
    if fir_candidates > 0 {
        instance.scalls[0].sw_pc_candidates = vec![ids[1]];
        instance.scalls[1].sw_pc_candidates = vec![ids[0]];
    }

    let imps = ImpDb::generate(&instance);
    let max: u64 = instance
        .scalls
        .iter()
        .map(|sc| {
            imps.for_scall(sc.id)
                .iter()
                .map(|i| i.gain.get())
                .max()
                .unwrap_or(0)
        })
        .sum();
    Workload {
        instance: std::sync::Arc::new(instance),
        imps: std::sync::Arc::new(imps),
        rg_sweep: vec![Cycles(max / 4), Cycles(max / 2), Cycles(3 * max / 4)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_core::{RequiredGains, SolveOptions, Solver};

    #[test]
    fn toy_program_computes_expected_results() {
        let (_, kernel) = compiled();
        // filtered[i] = prefix_sum(samples)[i] + weights[i] * 3.
        let samples: Vec<i32> = (0..16).map(|i| (i * 7 % 13) - 6).collect();
        let mut acc = 0;
        for i in 0..16u32 {
            acc += samples[i as usize];
            let expected = acc + (i as i32 + 1) * 3;
            assert_eq!(kernel.ydm.read(i).unwrap(), expected, "filtered[{i}]");
        }
    }

    #[test]
    fn parallel_code_analysis_feeds_the_instance() {
        let w = workload();
        // fir and weight are mutual software-PC candidates; post conflicts
        // with both (reads their outputs).
        assert_eq!(w.instance.scalls[0].sw_pc_candidates.len(), 1);
        assert_eq!(w.instance.scalls[1].sw_pc_candidates.len(), 1);
        assert!(w.instance.scalls[2].sw_pc_candidates.is_empty());
    }

    #[test]
    fn toy_workload_is_solvable() {
        let w = workload();
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::problem2(RequiredGains::uniform(
                w.rg_sweep[0],
            )))
            .unwrap();
        assert!(sel.total_gain() >= w.rg_sweep[0]);
    }
}
