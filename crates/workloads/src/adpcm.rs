//! ADPCM transcoder workload family (G.726-style 32 kbit/s, 8 kHz voice).
//!
//! Encoder and decoder run side by side (a transcoder): the **encoder
//! path** predicts the next sample with an adaptive FIR, quantises the
//! prediction error, adapts the logarithmic step size and reconstructs the
//! signal through the pole section; the **decoder path** inverse-quantises
//! and re-runs prediction and reconstruction. Quantiser work appears on
//! both paths, so the two quantiser ROMs in the library (IMP fan-out) are
//! shared-IP candidates across paths — the once-per-IP area charge is what
//! the selector must exploit.
//!
//! The predictor may run the quantiser stage's software as parallel code
//! (predictor MACs are independent of the previous sample's quantisation),
//! seeding SC-PC conflict rows on the encoder path.
//!
//! [`workload`] is the calibrated canonical instance; [`variant`] jitters
//! magnitudes by ±10 % with the structure fixed (the corpus axis).

use rand::rngs::StdRng;
use rand::SeedableRng;

use partita_core::{ImpDb, Instance, SCall};
use partita_interface::TransferJob;
use partita_ip::{IpBlock, IpFunction};
use partita_mop::{AreaTenths, Cycles};

use crate::{achievable_rg_sweep, jitter, jitter_freq, Workload};

fn logstep() -> IpFunction {
    IpFunction::Custom("logstep".into())
}

/// The canonical calibrated instance (identical to [`variant`]`(0)`).
#[must_use]
pub fn workload() -> Workload {
    variant(0)
}

/// A seeded family member: same structure, ±10 % magnitudes.
#[must_use]
pub fn variant(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4144_5043_4D5F_4731); // "ADPCM_G1"
    let mut instance = Instance::new(format!("adpcm_{seed}"));

    // --- library -----------------------------------------------------
    instance.library.add(
        IpBlock::builder("mac_fir8")
            .function(IpFunction::Fir)
            .ports(2, 1)
            .rates(1, 1)
            .latency(jitter(&mut rng, 8) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 140) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("mac_fir16")
            .function(IpFunction::Fir)
            .ports(2, 2)
            .rates(2, 2)
            .latency(jitter(&mut rng, 12) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 220) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("quant_rom")
            .function(IpFunction::Quantizer)
            .ports(1, 1)
            .rates(2, 2)
            .latency(jitter(&mut rng, 3) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 60) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("quant_pair")
            .function(IpFunction::Quantizer)
            .ports(2, 2)
            .rates(2, 2)
            .latency(jitter(&mut rng, 4) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 100) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("biquad_iir")
            .function(IpFunction::Iir)
            .ports(2, 1)
            .rates(2, 2)
            .latency(jitter(&mut rng, 6) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 150) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("logstep_lut")
            .function(logstep())
            .ports(1, 1)
            .rates(4, 4)
            .latency(jitter(&mut rng, 2) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 45) as i64))
            .build(),
    );

    // --- s-calls (per 16-sample block) -------------------------------
    let predict = instance.add_scall(
        SCall::new(
            "predict",
            IpFunction::Fir,
            Cycles(jitter(&mut rng, 14_000)),
            TransferJob::new(128, 32),
        )
        .with_freq(jitter_freq(&mut rng, 4))
        .with_plain_pc(Cycles(jitter(&mut rng, 150))),
    );
    let diff_quant = instance.add_scall(
        SCall::new(
            "diff_quant",
            IpFunction::Quantizer,
            Cycles(jitter(&mut rng, 6_000)),
            TransferJob::new(32, 32),
        )
        .with_freq(jitter_freq(&mut rng, 4)),
    );
    // Predictor MACs are independent of the previous quantisation step.
    instance.scalls[predict.index()].sw_pc_candidates = vec![diff_quant];
    let step_adapt = instance.add_scall(
        SCall::new(
            "step_adapt",
            logstep(),
            Cycles(jitter(&mut rng, 4_000)),
            TransferJob::new(32, 32),
        )
        .with_freq(jitter_freq(&mut rng, 4)),
    );
    let recon = instance.add_scall(
        SCall::new(
            "recon",
            IpFunction::Iir,
            Cycles(jitter(&mut rng, 8_000)),
            TransferJob::new(64, 64),
        )
        .with_freq(jitter_freq(&mut rng, 4)),
    );
    let iquant = instance.add_scall(
        SCall::new(
            "iquant",
            IpFunction::Quantizer,
            Cycles(jitter(&mut rng, 5_000)),
            TransferJob::new(32, 32),
        )
        .with_freq(jitter_freq(&mut rng, 4)),
    );
    let predict_d = instance.add_scall(
        SCall::new(
            "predict_d",
            IpFunction::Fir,
            Cycles(jitter(&mut rng, 14_000)),
            TransferJob::new(128, 32),
        )
        .with_freq(jitter_freq(&mut rng, 4)),
    );
    instance.scalls[iquant.index()].sw_pc_candidates = vec![predict_d];
    let recon_d = instance.add_scall(
        SCall::new(
            "recon_d",
            IpFunction::Iir,
            Cycles(jitter(&mut rng, 8_000)),
            TransferJob::new(64, 64),
        )
        .with_freq(jitter_freq(&mut rng, 4)),
    );

    instance.add_path(vec![predict, diff_quant, step_adapt, recon]);
    instance.add_path(vec![iquant, predict_d, recon_d]);

    let imps = ImpDb::generate(&instance);
    let rg_sweep = achievable_rg_sweep(&instance, &imps);
    Workload {
        instance: std::sync::Arc::new(instance),
        imps: std::sync::Arc::new(imps),
        rg_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_core::{RequiredGains, SelectionAuditor, SolveOptions, Solver};

    #[test]
    fn canonical_shape() {
        let w = workload();
        assert_eq!(w.instance.scalls.len(), 7);
        assert_eq!(w.instance.library.len(), 6);
        assert_eq!(w.instance.paths.len(), 2);
        assert!(!w.imps.is_empty());
        // Quantiser s-calls appear on both paths and share the same ROMs:
        // the fan-out pair must serve encoder and decoder sides alike.
        let enc_q = w.imps.for_scall(w.instance.scalls[1].id);
        let dec_q = w.imps.for_scall(w.instance.scalls[4].id);
        assert!(!enc_q.is_empty() && !dec_q.is_empty());
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(variant(5).imps.imps(), variant(5).imps.imps());
        assert_ne!(variant(5).imps.imps(), variant(6).imps.imps());
    }

    #[test]
    fn sweep_points_solve_and_audit_clean() {
        for seed in [0, 21] {
            let w = variant(seed);
            for &rg in &w.rg_sweep {
                let opts = SolveOptions::problem2(RequiredGains::uniform(rg));
                let sel = Solver::new(&w.instance)
                    .with_imps(w.imps.clone())
                    .solve(&opts)
                    .expect("achievable sweep point");
                let report = SelectionAuditor::new(&w.instance, &w.imps).audit(&sel, &opts);
                assert!(report.is_clean(), "seed {seed}: {}", report.to_json());
            }
        }
    }
}
