//! LMS echo-canceller workload family (NLMS, 512-tap acoustic echo path).
//!
//! Per block the **filter path** convolves the far-end reference through
//! the adaptive FIR to estimate the echo, normalises the residual and runs
//! the double-talk detector; the **adaptation path** cross-correlates the
//! residual with the reference and applies the scaled coefficient update
//! (an saxpy over all taps). The estimation FIR and the update touch the
//! same tap count, so they dominate both paths at similar magnitudes —
//! selecting one IP that serves correlation *and* update (the `corr_saxpy`
//! M-IP) against two single-function blocks is the family's core tension.
//!
//! The cross-correlation may run the coefficient update's software as
//! parallel code (the update reads last block's correlation), seeding the
//! SC-PC conflict rows on the adaptation path.
//!
//! [`workload`] is the calibrated canonical instance; [`variant`] jitters
//! magnitudes by ±10 % with the structure fixed (the corpus axis).

use rand::rngs::StdRng;
use rand::SeedableRng;

use partita_core::{ImpDb, Instance, SCall};
use partita_interface::TransferJob;
use partita_ip::{IpBlock, IpFunction};
use partita_mop::{AreaTenths, Cycles};

use crate::{achievable_rg_sweep, jitter, jitter_freq, Workload};

fn saxpy() -> IpFunction {
    IpFunction::Custom("saxpy".into())
}

/// The canonical calibrated instance (identical to [`variant`]`(0)`).
#[must_use]
pub fn workload() -> Workload {
    variant(0)
}

/// A seeded family member: same structure, ±10 % magnitudes.
#[must_use]
pub fn variant(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4C4D_535F_4E4C_4D53); // "LMS_NLMS"
    let mut instance = Instance::new(format!("lms_{seed}"));

    // --- library -----------------------------------------------------
    instance.library.add(
        IpBlock::builder("mac_fir32")
            .function(IpFunction::Fir)
            .ports(2, 1)
            .rates(1, 1)
            .latency(jitter(&mut rng, 10) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 260) as i64))
            .build(),
    );
    // The wide FIR datapath needs buffered interfaces (3 in-ports).
    instance.library.add(
        IpBlock::builder("mac_fir64")
            .function(IpFunction::Fir)
            .ports(3, 2)
            .rates(1, 1)
            .latency(jitter(&mut rng, 6) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 420) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("corr_engine")
            .function(IpFunction::Correlator)
            .ports(2, 1)
            .rates(2, 2)
            .latency(jitter(&mut rng, 8) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 180) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("saxpy_unit")
            .function(saxpy())
            .ports(2, 2)
            .rates(1, 1)
            .latency(jitter(&mut rng, 4) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 200) as i64))
            .build(),
    );
    // M-IP serving correlation and the tap update from one datapath.
    instance.library.add(
        IpBlock::builder("corr_saxpy")
            .function(IpFunction::Correlator)
            .function(saxpy())
            .ports(2, 2)
            .rates(2, 2)
            .latency(jitter(&mut rng, 10) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 300) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("norm_unit")
            .function(IpFunction::Quantizer)
            .ports(1, 1)
            .rates(2, 2)
            .latency(jitter(&mut rng, 3) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 70) as i64))
            .build(),
    );

    // --- s-calls (per 64-sample block) --------------------------------
    let echo_estimate = instance.add_scall(
        SCall::new(
            "echo_estimate",
            IpFunction::Fir,
            Cycles(jitter(&mut rng, 40_000)),
            TransferJob::new(256, 64),
        )
        .with_freq(jitter_freq(&mut rng, 2))
        .with_plain_pc(Cycles(jitter(&mut rng, 250))),
    );
    let err_norm = instance.add_scall(
        SCall::new(
            "err_norm",
            IpFunction::Quantizer,
            Cycles(jitter(&mut rng, 5_000)),
            TransferJob::new(64, 64),
        )
        .with_freq(jitter_freq(&mut rng, 2)),
    );
    let xcorr = instance.add_scall(
        SCall::new(
            "xcorr",
            IpFunction::Correlator,
            Cycles(jitter(&mut rng, 22_000)),
            TransferJob::new(256, 128),
        )
        .with_freq(jitter_freq(&mut rng, 2)),
    );
    let coef_update = instance.add_scall(
        SCall::new(
            "coef_update",
            saxpy(),
            Cycles(jitter(&mut rng, 26_000)),
            TransferJob::new(256, 256),
        )
        .with_freq(jitter_freq(&mut rng, 2)),
    );
    // The correlation may overlap the update's software (it consumes last
    // block's correlation, not this one's).
    instance.scalls[xcorr.index()].sw_pc_candidates = vec![coef_update];
    let dtd = instance.add_scall(
        SCall::new(
            "dtd",
            IpFunction::Correlator,
            Cycles(jitter(&mut rng, 9_000)),
            TransferJob::new(128, 32),
        )
        .with_freq(jitter_freq(&mut rng, 2)),
    );

    // The residual normalisation sits on both paths (shared stage).
    instance.add_path(vec![echo_estimate, err_norm, dtd]);
    instance.add_path(vec![xcorr, coef_update, err_norm]);

    let imps = ImpDb::generate(&instance);
    let rg_sweep = achievable_rg_sweep(&instance, &imps);
    Workload {
        instance: std::sync::Arc::new(instance),
        imps: std::sync::Arc::new(imps),
        rg_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_core::{RequiredGains, SelectionAuditor, SolveOptions, Solver};

    #[test]
    fn canonical_shape() {
        let w = workload();
        assert_eq!(w.instance.scalls.len(), 5);
        assert_eq!(w.instance.library.len(), 6);
        assert_eq!(w.instance.paths.len(), 2);
        assert!(!w.imps.is_empty());
        // Correlation work is served by the engine and the M-IP alike.
        let xcorr_ips: std::collections::BTreeSet<_> = w
            .imps
            .for_scall(w.instance.scalls[2].id)
            .iter()
            .flat_map(|i| i.ips.iter().copied())
            .collect();
        assert!(xcorr_ips.len() >= 2, "correlator fan-out collapsed");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(variant(8).imps.imps(), variant(8).imps.imps());
        assert_ne!(variant(8).imps.imps(), variant(9).imps.imps());
    }

    #[test]
    fn sweep_points_solve_and_audit_clean() {
        for seed in [0, 33] {
            let w = variant(seed);
            for &rg in &w.rg_sweep {
                let opts = SolveOptions::problem2(RequiredGains::uniform(rg));
                let sel = Solver::new(&w.instance)
                    .with_imps(w.imps.clone())
                    .solve(&opts)
                    .expect("achievable sweep point");
                let report = SelectionAuditor::new(&w.instance, &w.imps).audit(&sel, &opts);
                assert!(report.is_clean(), "seed {seed}: {}", report.to_json());
            }
        }
    }
}
