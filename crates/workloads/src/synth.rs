//! Seeded random instance generator for scaling studies and ablations.
//!
//! [`SynthParams`] exposes the axes the scaling corpus sweeps:
//!
//! * **size** — `scalls` / `ips` / `paths`, with order-of-magnitude presets
//!   ([`SynthParams::micro`] through [`SynthParams::x1000`]) anchored on the
//!   paper's GSM-encoder table (18 s-calls / 23 IPs);
//! * **IMP fan-out** — `imp_fanout` sets how many library IPs implement each
//!   DSP function, which directly scales the IMPs-per-s-call count the
//!   formulation sees;
//! * **conflict density** — `conflict_pct` sets the fraction of s-calls
//!   whose parallel code may consume a neighbour's software implementation
//!   (the Problem 2 generalisation), which drives the SC-PC conflict rows;
//! * **hierarchy depth** — `hierarchy_depth` nests child s-calls under the
//!   first top-level call and folds them through
//!   [`partita_core::hierarchy::try_flatten`] (validated specs), so scaled
//!   instances exercise the composite-IMP path of Fig. 11;
//! * **interface-kind mix** — [`KindMix`] shapes IP ports/rates so the
//!   feasible interface set per IP is the natural mix, buffered-only, or
//!   all four kinds.
//!
//! Instances are fully deterministic per parameter set; degenerate
//! parameters are rejected by [`try_generate`] with a typed [`SynthError`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use partita_core::hierarchy::{self, FlattenLimits, HierSpec};
use partita_core::{ImpDb, Instance, SCall};
use partita_interface::TransferJob;
use partita_ip::{IpBlock, IpFunction};
use partita_mop::{AreaTenths, CallSiteId, Cycles};

use crate::{achievable_rg_sweep, Workload};

/// How the generator shapes IP ports and rates, which determines the
/// interface kinds each IP admits (bufferless types need ≤ 2 ports; type 0
/// additionally needs matched rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KindMix {
    /// Ports 1–3 and rates 1–8: the historical behaviour, a natural mix in
    /// which some IPs admit all four kinds and some only the buffered ones.
    #[default]
    Balanced,
    /// Every IP has more than two ports, so only the buffered types 1/3
    /// (the parallel-capable kinds) are feasible.
    BufferedOnly,
    /// Every IP has ≤ 2 ports and matched full-speed rates, so all four
    /// interface kinds are feasible for every block.
    AllKinds,
}

impl KindMix {
    /// Stable label used by the corpus manifest.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            KindMix::Balanced => "balanced",
            KindMix::BufferedOnly => "buffered",
            KindMix::AllKinds => "all",
        }
    }
}

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthParams {
    /// Number of top-level s-calls.
    pub scalls: usize,
    /// Number of IP blocks in the library.
    pub ips: usize,
    /// Number of execution paths (s-calls are assigned round-robin).
    /// Saturated to `scalls` so no generated path is empty.
    pub paths: usize,
    /// RNG seed (instances are fully deterministic per seed).
    pub seed: u64,
    /// Library IPs per DSP function: the function pool has
    /// `ceil(ips / imp_fanout)` entries, so each s-call is matched by about
    /// `imp_fanout` IPs. Must be ≥ 1.
    pub imp_fanout: usize,
    /// Percentage (0–100) of s-calls given software-parallel-code
    /// candidates; above 50 each conflicted s-call gets two candidates.
    pub conflict_pct: u8,
    /// Nested-call levels under the first s-call, folded into composite
    /// IMPs through validated hierarchy specs. 0 = flat.
    pub hierarchy_depth: usize,
    /// Interface-kind mix (see [`KindMix`]).
    pub kind_mix: KindMix,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            scalls: 12,
            ips: 8,
            paths: 2,
            seed: 0xDAC_1999,
            imp_fanout: 2,
            conflict_pct: 100,
            hierarchy_depth: 0,
            kind_mix: KindMix::Balanced,
        }
    }
}

impl SynthParams {
    /// Legacy-shaped constructor: size axes explicit, every structural knob
    /// at its default.
    #[must_use]
    pub fn sized(scalls: usize, ips: usize, paths: usize, seed: u64) -> SynthParams {
        SynthParams {
            scalls,
            ips,
            paths,
            seed,
            ..SynthParams::default()
        }
    }

    /// Replaces the seed (the corpus enumerates seeds per preset).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> SynthParams {
        self.seed = seed;
        self
    }

    /// Tiny instances sized for the exhaustive-enumeration oracle: the
    /// differential gate skips instances over the backend's binary cap
    /// (24), so micro keeps unit IMP fan-out and a low conflict density —
    /// at 3 s-calls × 1 supporting IP × ≤4 interface kinds plus sparse
    /// parallel variants, nearly every seed stays under it.
    #[must_use]
    pub fn micro() -> SynthParams {
        SynthParams {
            scalls: 3,
            ips: 2,
            paths: 2,
            seed: 0,
            imp_fanout: 1,
            conflict_pct: 25,
            hierarchy_depth: 0,
            kind_mix: KindMix::Balanced,
        }
    }

    /// Small instances: quick to solve optimally, large enough that the
    /// branch-and-bound tree is non-trivial.
    #[must_use]
    pub fn small() -> SynthParams {
        SynthParams {
            scalls: 6,
            ips: 4,
            paths: 2,
            seed: 0,
            imp_fanout: 2,
            conflict_pct: 50,
            hierarchy_depth: 0,
            kind_mix: KindMix::Balanced,
        }
    }

    /// The published-table scale: 18 s-calls / 23 IPs, matching the GSM
    /// encoder of Table 1, with one hierarchy level and a 60 % conflict
    /// density.
    #[must_use]
    pub fn table() -> SynthParams {
        SynthParams {
            scalls: 18,
            ips: 23,
            paths: 3,
            seed: 0,
            imp_fanout: 4,
            conflict_pct: 60,
            hierarchy_depth: 1,
            kind_mix: KindMix::Balanced,
        }
    }

    /// 10× the table scale.
    #[must_use]
    pub fn x10() -> SynthParams {
        SynthParams {
            scalls: 180,
            ips: 46,
            paths: 6,
            seed: 0,
            imp_fanout: 4,
            conflict_pct: 60,
            hierarchy_depth: 1,
            kind_mix: KindMix::Balanced,
        }
    }

    /// 100× the table scale. Optimal solves are out of reach at this size;
    /// the corpus gates it behind an env flag and checks the greedy
    /// baseline + audit instead.
    #[must_use]
    pub fn x100() -> SynthParams {
        SynthParams {
            scalls: 1800,
            ips: 92,
            paths: 12,
            seed: 0,
            imp_fanout: 4,
            conflict_pct: 60,
            hierarchy_depth: 2,
            kind_mix: KindMix::Balanced,
        }
    }

    /// 1000× the table scale — generation-only territory for memory and
    /// throughput studies (no corpus entry solves it).
    #[must_use]
    pub fn x1000() -> SynthParams {
        SynthParams {
            scalls: 18_000,
            ips: 184,
            paths: 24,
            seed: 0,
            imp_fanout: 4,
            conflict_pct: 60,
            hierarchy_depth: 2,
            kind_mix: KindMix::Balanced,
        }
    }

    /// Looks up an order-of-magnitude preset by its manifest name.
    #[must_use]
    pub fn preset(name: &str) -> Option<SynthParams> {
        match name {
            "micro" => Some(SynthParams::micro()),
            "small" => Some(SynthParams::small()),
            "table" => Some(SynthParams::table()),
            "x10" => Some(SynthParams::x10()),
            "x100" => Some(SynthParams::x100()),
            "x1000" => Some(SynthParams::x1000()),
            _ => None,
        }
    }

    /// The manifest names accepted by [`SynthParams::preset`], smallest
    /// first.
    pub const PRESETS: [&'static str; 6] = ["micro", "small", "table", "x10", "x100", "x1000"];
}

/// A degenerate parameter set the generator refuses to expand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthError {
    /// `scalls == 0`: an instance with no s-calls has nothing to select.
    ZeroSCalls,
    /// `ips == 0`: an empty library generates an empty IMP database.
    ZeroIps,
    /// `paths == 0`: every s-call must lie on some execution path.
    ZeroPaths,
    /// `imp_fanout == 0`: the function pool would be unbounded.
    ZeroFanout,
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::ZeroSCalls => write!(f, "scalls must be >= 1"),
            SynthError::ZeroIps => write!(f, "ips must be >= 1"),
            SynthError::ZeroPaths => write!(f, "paths must be >= 1"),
            SynthError::ZeroFanout => write!(f, "imp_fanout must be >= 1"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Generator failures surface on the wire as API error code 300
/// (`workload`), keeping the daemon's error envelope uniform with
/// solver-side [`partita_core::api::ApiError`] codes.
impl From<SynthError> for partita_core::api::ApiError {
    fn from(err: SynthError) -> partita_core::api::ApiError {
        partita_core::api::ApiError::Workload(err.to_string())
    }
}

/// The `k`-th function of the generator's pool: the six named DSP functions
/// first, `Custom` functions beyond (so large libraries get distinct
/// functions instead of piling every IP onto six).
fn pool_function(k: usize) -> IpFunction {
    match k {
        0 => IpFunction::Fir,
        1 => IpFunction::Iir,
        2 => IpFunction::Correlator,
        3 => IpFunction::Quantizer,
        4 => IpFunction::Dct1d,
        5 => IpFunction::Fft,
        _ => IpFunction::Custom(format!("synf{k}")),
    }
}

/// Generates a random instance and its [`ImpDb::generate`]d database,
/// panicking on degenerate parameters.
///
/// S-calls are given random software times, frequencies, jobs and parallel
/// code; IPs random rates/latencies/areas. The returned sweep covers 20–80 %
/// of the maximum gain achievable on the weakest path.
///
/// # Panics
///
/// On a degenerate parameter set; use [`try_generate`] for the typed error.
#[must_use]
pub fn generate(params: SynthParams) -> Workload {
    try_generate(params).unwrap_or_else(|e| panic!("degenerate SynthParams: {e}"))
}

/// Fallible form of [`generate`].
///
/// # Errors
///
/// [`SynthError`] when `scalls`, `ips`, `paths` or `imp_fanout` is zero.
/// `paths > scalls` is saturated (clamped to `scalls`) rather than
/// rejected, so no generated path is ever empty.
pub fn try_generate(params: SynthParams) -> Result<Workload, SynthError> {
    if params.scalls == 0 {
        return Err(SynthError::ZeroSCalls);
    }
    if params.ips == 0 {
        return Err(SynthError::ZeroIps);
    }
    if params.paths == 0 {
        return Err(SynthError::ZeroPaths);
    }
    if params.imp_fanout == 0 {
        return Err(SynthError::ZeroFanout);
    }
    let paths = params.paths.min(params.scalls);
    let pool = params.ips.div_ceil(params.imp_fanout).max(1);

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut instance = Instance::new(format!("synth_{}", params.seed));

    for i in 0..params.ips {
        // Functions are dealt round-robin so every pool function is
        // implemented by ~`imp_fanout` IPs (the fan-out knob).
        let func = pool_function(i % pool);
        let rate = match params.kind_mix {
            KindMix::AllKinds => rng.gen_range(4..=8),
            _ => rng.gen_range(1..=8),
        };
        let (in_ports, out_ports) = match params.kind_mix {
            KindMix::Balanced => (rng.gen_range(1..=3), rng.gen_range(1..=3)),
            KindMix::BufferedOnly => (rng.gen_range(3..=4), rng.gen_range(1..=3)),
            KindMix::AllKinds => (rng.gen_range(1..=2), rng.gen_range(1..=2)),
        };
        let mut builder = IpBlock::builder(format!("ip{i}"))
            .function(func)
            .ports(in_ports, out_ports)
            .rates(rate, rate)
            .latency(rng.gen_range(2..=32))
            .area(AreaTenths::from_tenths(rng.gen_range(5..=300)));
        // A quarter of the library are M-IPs supporting a second function.
        if rng.gen_bool(0.25) {
            builder = builder.function(pool_function(rng.gen_range(0..pool)));
        }
        instance.library.add(builder.build());
    }

    let mut ids = Vec::new();
    for i in 0..params.scalls {
        let func = pool_function(rng.gen_range(0..pool));
        let words = rng.gen_range(8..=256) * 2;
        let sc = SCall::new(
            format!("sc{i}"),
            func,
            Cycles(rng.gen_range(2_000..200_000)),
            TransferJob::new(words, words),
        )
        .with_freq(rng.gen_range(1..=16))
        .with_plain_pc(Cycles(rng.gen_range(0..500)));
        ids.push(instance.add_scall(sc));
    }
    // Problem 2 candidates: `conflict_pct` % of the s-calls (spread evenly,
    // Bresenham-style) may run successors in software as parallel code —
    // one successor up to 50 %, two above.
    let pct = u64::from(params.conflict_pct.min(100));
    for i in 0..params.scalls {
        let conflicted = (i as u64 * pct) % 100 < pct;
        if !conflicted {
            continue;
        }
        let mut candidates = Vec::new();
        if i + 1 < params.scalls {
            candidates.push(ids[i + 1]);
        }
        if pct > 50 && i + 2 < params.scalls {
            candidates.push(ids[i + 2]);
        }
        instance.scalls[i].sw_pc_candidates = candidates;
    }

    for p in 0..paths {
        let scs: Vec<CallSiteId> = ids
            .iter()
            .enumerate()
            .filter(|(i, _)| i % paths == p)
            .map(|(_, &id)| id)
            .collect();
        instance.add_path(scs);
    }

    // Nested-call levels: a chain of child s-calls under the first
    // top-level call (two children on the first level), off every path —
    // they are decided through the parent's composite IMPs, exactly the
    // Fig. 11 folding.
    let mut specs: Vec<HierSpec> = Vec::new();
    let mut parent = ids[0];
    for level in 1..=params.hierarchy_depth {
        let n_children = if level == 1 { 2 } else { 1 };
        let mut children = Vec::new();
        for c in 0..n_children {
            let func = pool_function(rng.gen_range(0..pool));
            let words = rng.gen_range(8..=64) * 2;
            let sc = SCall::new(
                format!("h{level}c{c}"),
                func,
                Cycles(rng.gen_range(1_000..50_000)),
                TransferJob::new(words, words),
            )
            .with_freq(rng.gen_range(1..=4));
            children.push(instance.add_scall(sc));
        }
        specs.push(HierSpec { parent, children });
        parent = specs.last().expect("level pushed").children[0];
    }

    let mut imps = ImpDb::generate(&instance);
    if !specs.is_empty() {
        // Bottom-up (deepest spec first), through the validating entry
        // point: a generator bug that emitted a malformed hierarchy must
        // surface as the typed error, not as a nonsense database.
        specs.reverse();
        imps = hierarchy::try_flatten(&imps, &specs, FlattenLimits::default())
            .expect("generated hierarchy specs are structurally valid");
    }
    let rg_sweep = achievable_rg_sweep(&instance, &imps);

    Ok(Workload {
        instance: std::sync::Arc::new(instance),
        imps: std::sync::Arc::new(imps),
        rg_sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_core::{baseline, RequiredGains, SolveOptions, Solver};

    #[test]
    fn deterministic_per_seed() {
        let a = generate(SynthParams::default());
        let b = generate(SynthParams::default());
        assert_eq!(a.imps.len(), b.imps.len());
        assert_eq!(a.instance.scalls.len(), b.instance.scalls.len());
        let c = generate(SynthParams {
            seed: 7,
            ..SynthParams::default()
        });
        // Different seed, almost surely different database size or gains.
        let same = a.imps.len() == c.imps.len()
            && a.imps
                .imps()
                .iter()
                .zip(c.imps.imps())
                .all(|(x, y)| x.gain == y.gain);
        assert!(!same);
    }

    #[test]
    fn generated_instances_are_solvable() {
        let w = generate(SynthParams::sized(8, 6, 2, 42));
        assert!(!w.imps.is_empty());
        let rg = w.rg_sweep[0];
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::problem2(RequiredGains::uniform(rg)))
            .unwrap();
        for (_, g) in &sel.gain_per_path {
            let _ = g;
        }
        // Greedy on the same instance is feasible or infeasible, but if
        // feasible it can never beat the ILP's area.
        if let Ok(greedy) =
            baseline::solve_greedy(&w.instance, &w.imps, &RequiredGains::uniform(rg))
        {
            assert!(greedy.total_area() >= sel.total_area());
        }
    }

    #[test]
    fn paths_partition_scalls() {
        let w = generate(SynthParams::sized(9, 4, 3, 1));
        let total: usize = w.instance.paths.iter().map(|p| p.scalls.len()).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn degenerate_params_are_typed_errors() {
        let base = SynthParams::small();
        let err = |p: SynthParams| try_generate(p).map(|_| ()).unwrap_err();
        assert_eq!(
            err(SynthParams { scalls: 0, ..base }),
            SynthError::ZeroSCalls
        );
        assert_eq!(err(SynthParams { ips: 0, ..base }), SynthError::ZeroIps);
        assert_eq!(err(SynthParams { paths: 0, ..base }), SynthError::ZeroPaths);
        assert_eq!(
            err(SynthParams {
                imp_fanout: 0,
                ..base
            }),
            SynthError::ZeroFanout
        );
        assert!(SynthError::ZeroPaths.to_string().contains("paths"));
    }

    #[test]
    fn excess_paths_saturate_to_scalls() {
        let w = generate(SynthParams {
            paths: 10,
            ..SynthParams::sized(3, 3, 10, 5)
        });
        assert_eq!(w.instance.paths.len(), 3);
        assert!(w.instance.paths.iter().all(|p| !p.scalls.is_empty()));
    }

    #[test]
    fn fanout_bounds_ips_per_function() {
        let w = generate(SynthParams {
            imp_fanout: 3,
            ips: 12,
            ..SynthParams::sized(6, 12, 2, 9)
        });
        // Pool of ceil(12/3) = 4 functions; round-robin deal means each is
        // implemented by exactly 3 primary IPs (M-IP extras aside).
        for k in 0..4 {
            let f = pool_function(k);
            let primary = w
                .instance
                .library
                .iter()
                .filter(|b| b.functions().first() == Some(&f))
                .count();
            assert_eq!(primary, 3, "function {f:?}");
        }
    }

    #[test]
    fn conflict_density_scales_candidates() {
        let none = generate(SynthParams {
            conflict_pct: 0,
            ..SynthParams::sized(10, 4, 2, 11)
        });
        assert!(none
            .instance
            .scalls
            .iter()
            .all(|s| s.sw_pc_candidates.is_empty()));
        let half = generate(SynthParams {
            conflict_pct: 50,
            ..SynthParams::sized(10, 4, 2, 11)
        });
        let conflicted = half
            .instance
            .scalls
            .iter()
            .filter(|s| !s.sw_pc_candidates.is_empty())
            .count();
        assert_eq!(conflicted, 5);
        let full = generate(SynthParams {
            conflict_pct: 100,
            ..SynthParams::sized(10, 4, 2, 11)
        });
        // Every s-call with room for a successor is conflicted, and the
        // high-density regime hands out two candidates where possible.
        assert!(full.instance.scalls[0].sw_pc_candidates.len() == 2);
        assert!(full
            .instance
            .scalls
            .iter()
            .take(9)
            .all(|s| !s.sw_pc_candidates.is_empty()));
    }

    #[test]
    fn hierarchy_depth_adds_children_and_flattens() {
        let flat = generate(SynthParams {
            hierarchy_depth: 0,
            ..SynthParams::sized(5, 4, 2, 13)
        });
        let deep = generate(SynthParams {
            hierarchy_depth: 2,
            ..SynthParams::sized(5, 4, 2, 13)
        });
        // Level 1 adds two children, level 2 one more.
        assert_eq!(deep.instance.scalls.len(), flat.instance.scalls.len() + 3);
        // Children live off-path: the paths still partition the 5 top calls.
        let on_paths: usize = deep.instance.paths.iter().map(|p| p.scalls.len()).sum();
        assert_eq!(on_paths, 5);
        // Consumed children keep no IMPs of their own.
        for sc in &deep.instance.scalls[5..] {
            assert!(
                deep.imps.for_scall(sc.id).is_empty(),
                "child {} must be folded into the parent",
                sc.name
            );
        }
    }

    #[test]
    fn buffered_only_mix_never_emits_bufferless_imps() {
        let w = generate(SynthParams {
            kind_mix: KindMix::BufferedOnly,
            ..SynthParams::sized(8, 6, 2, 17)
        });
        assert!(!w.imps.is_empty());
        for imp in w.imps.imps() {
            assert!(
                imp.interface.has_buffers(),
                "bufferless {} leaked through the buffered-only mix",
                imp.interface
            );
        }
    }

    #[test]
    fn all_kinds_mix_reaches_all_four_kinds() {
        let w = generate(SynthParams {
            kind_mix: KindMix::AllKinds,
            ..SynthParams::sized(12, 8, 2, 19)
        });
        let kinds: std::collections::BTreeSet<_> =
            w.imps.imps().iter().map(|i| i.interface).collect();
        assert_eq!(kinds.len(), 4, "expected all four kinds, got {kinds:?}");
    }

    #[test]
    fn presets_resolve_and_scale() {
        for name in SynthParams::PRESETS {
            assert!(SynthParams::preset(name).is_some(), "{name}");
        }
        assert!(SynthParams::preset("huge").is_none());
        assert!(SynthParams::micro().scalls < SynthParams::small().scalls);
        assert_eq!(SynthParams::table().scalls, 18);
        assert_eq!(SynthParams::x10().scalls, 180);
        assert_eq!(SynthParams::x100().scalls, 1800);
        assert_eq!(SynthParams::x1000().scalls, 18_000);
    }
}
