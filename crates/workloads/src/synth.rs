//! Seeded random instance generator for scaling studies and ablations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use partita_core::{ImpDb, Instance, SCall};
use partita_interface::TransferJob;
use partita_ip::{IpBlock, IpFunction};
use partita_mop::{AreaTenths, CallSiteId, Cycles};

use crate::Workload;

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthParams {
    /// Number of s-calls.
    pub scalls: usize,
    /// Number of IP blocks in the library.
    pub ips: usize,
    /// Number of execution paths (s-calls are assigned round-robin).
    pub paths: usize,
    /// RNG seed (instances are fully deterministic per seed).
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            scalls: 12,
            ips: 8,
            paths: 2,
            seed: 0xDAC_1999,
        }
    }
}

const FUNCTIONS: [IpFunction; 6] = [
    IpFunction::Fir,
    IpFunction::Iir,
    IpFunction::Correlator,
    IpFunction::Quantizer,
    IpFunction::Dct1d,
    IpFunction::Fft,
];

/// Generates a random instance and its [`ImpDb::generate`]d database.
///
/// S-calls are given random software times, frequencies, jobs and parallel
/// code; IPs random rates/latencies/areas. The returned sweep covers 20–80 %
/// of the maximum achievable gain.
#[must_use]
pub fn generate(params: SynthParams) -> Workload {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut instance = Instance::new(format!("synth_{}", params.seed));

    for i in 0..params.ips {
        let func = FUNCTIONS[rng.gen_range(0..FUNCTIONS.len())].clone();
        let rate = rng.gen_range(1..=8);
        let mut builder = IpBlock::builder(format!("ip{i}"))
            .function(func)
            .ports(rng.gen_range(1..=3), rng.gen_range(1..=3))
            .rates(rate, rate)
            .latency(rng.gen_range(2..=32))
            .area(AreaTenths::from_tenths(rng.gen_range(5..=300)));
        // A quarter of the library are M-IPs supporting a second function.
        if rng.gen_bool(0.25) {
            builder = builder.function(FUNCTIONS[rng.gen_range(0..FUNCTIONS.len())].clone());
        }
        instance.library.add(builder.build());
    }

    let mut ids = Vec::new();
    for i in 0..params.scalls {
        let func = FUNCTIONS[rng.gen_range(0..FUNCTIONS.len())].clone();
        let words = rng.gen_range(8..=256) * 2;
        let sc = SCall::new(
            format!("sc{i}"),
            func,
            Cycles(rng.gen_range(2_000..200_000)),
            TransferJob::new(words, words),
        )
        .with_freq(rng.gen_range(1..=16))
        .with_plain_pc(Cycles(rng.gen_range(0..500)));
        ids.push(instance.add_scall(sc));
    }
    // Problem 2 candidates: each s-call may use the next one in software.
    for i in 0..params.scalls.saturating_sub(1) {
        let next = ids[i + 1];
        instance.scalls[i].sw_pc_candidates = vec![next];
    }

    for p in 0..params.paths.max(1) {
        let scs: Vec<CallSiteId> = ids
            .iter()
            .enumerate()
            .filter(|(i, _)| i % params.paths.max(1) == p)
            .map(|(_, &id)| id)
            .collect();
        instance.add_path(scs);
    }

    let imps = ImpDb::generate(&instance);
    // The sweep must stay achievable on *every* path (a uniform RG binds
    // each path separately): per s-call take the best conflict-free gain
    // (SwScalls variants exclude other s-calls' acceleration, so they
    // cannot all be summed), then take the weakest path's total.
    let best_of = |sc: &SCall| {
        imps.for_scall(sc.id)
            .iter()
            .filter(|i| i.parallel.consumed_scalls().is_empty())
            .map(|i| i.gain.get())
            .max()
            .unwrap_or(0)
    };
    let max_gain: u64 = instance
        .paths
        .iter()
        .map(|p| {
            p.scalls
                .iter()
                .filter_map(|&sc| instance.scall(sc))
                .map(best_of)
                .sum::<u64>()
        })
        .min()
        .unwrap_or(0);
    let rg_sweep = (1..=4).map(|k| Cycles(max_gain * k / 5)).collect();

    Workload {
        instance: std::sync::Arc::new(instance),
        imps: std::sync::Arc::new(imps),
        rg_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_core::{baseline, RequiredGains, SolveOptions, Solver};

    #[test]
    fn deterministic_per_seed() {
        let a = generate(SynthParams::default());
        let b = generate(SynthParams::default());
        assert_eq!(a.imps.len(), b.imps.len());
        assert_eq!(a.instance.scalls.len(), b.instance.scalls.len());
        let c = generate(SynthParams {
            seed: 7,
            ..SynthParams::default()
        });
        // Different seed, almost surely different database size or gains.
        let same = a.imps.len() == c.imps.len()
            && a.imps
                .imps()
                .iter()
                .zip(c.imps.imps())
                .all(|(x, y)| x.gain == y.gain);
        assert!(!same);
    }

    #[test]
    fn generated_instances_are_solvable() {
        let w = generate(SynthParams {
            scalls: 8,
            ips: 6,
            paths: 2,
            seed: 42,
        });
        assert!(!w.imps.is_empty());
        let rg = w.rg_sweep[0];
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::problem2(RequiredGains::uniform(rg)))
            .unwrap();
        for (_, g) in &sel.gain_per_path {
            let _ = g;
        }
        // Greedy on the same instance is feasible or infeasible, but if
        // feasible it can never beat the ILP's area.
        if let Ok(greedy) =
            baseline::solve_greedy(&w.instance, &w.imps, &RequiredGains::uniform(rg))
        {
            assert!(greedy.total_area() >= sel.total_area());
        }
    }

    #[test]
    fn paths_partition_scalls() {
        let w = generate(SynthParams {
            scalls: 9,
            ips: 4,
            paths: 3,
            seed: 1,
        });
        let total: usize = w.instance.paths.iter().map(|p| p.scalls.len()).sum();
        assert_eq!(total, 9);
    }
}
