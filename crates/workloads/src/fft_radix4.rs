//! Radix-4 FFT pipeline workload family (256-point windowed spectral
//! front-end) — the hierarchical member of the corpus.
//!
//! The **transform path** windows the input block, runs the 256-point
//! radix-4 FFT and computes magnitudes; the **output path** digit-reverses
//! the transform order for the consumer. The FFT s-call is *hierarchical*,
//! mirroring the paper's `dct2d → dct1d → fft → cmul` chain: its software
//! implementation calls a radix-4 butterfly pass, which in turn calls the
//! twiddle complex multiply. Both children carry their own IPs, so
//! [`partita_core::hierarchy::try_flatten`] folds them bottom-up into
//! composite IMPs of the top-level transform ("software FFT, hardware
//! twiddles" and deeper combinations) alongside the monolithic FFT engine —
//! exactly the Fig. 11 mechanism, exercised by a generated family instead
//! of the calibrated Table 3 instance.
//!
//! [`workload`] is the calibrated canonical instance; [`variant`] jitters
//! magnitudes by ±10 % with the structure fixed (the corpus axis).

use rand::rngs::StdRng;
use rand::SeedableRng;

use partita_core::hierarchy::{try_flatten, FlattenLimits, HierSpec};
use partita_core::{ImpDb, Instance, SCall};
use partita_interface::TransferJob;
use partita_ip::{IpBlock, IpFunction};
use partita_mop::{AreaTenths, Cycles};

use crate::{achievable_rg_sweep, jitter, jitter_freq, Workload};

fn radix4() -> IpFunction {
    IpFunction::Custom("radix4".into())
}

/// The canonical calibrated instance (identical to [`variant`]`(0)`).
#[must_use]
pub fn workload() -> Workload {
    variant(0)
}

/// A seeded family member: same structure, ±10 % magnitudes.
#[must_use]
pub fn variant(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4646_545F_5258_3421); // "FFT_RX4!"
    let mut instance = Instance::new(format!("fft_radix4_{seed}"));

    // --- library -----------------------------------------------------
    instance.library.add(
        IpBlock::builder("fft256_core")
            .function(IpFunction::Fft)
            .ports(2, 2)
            .rates(2, 2)
            .latency(jitter(&mut rng, 24) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 340) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("radix4_dp")
            .function(radix4())
            .ports(2, 2)
            .rates(1, 1)
            .latency(jitter(&mut rng, 6) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 160) as i64))
            .build(),
    );
    // Twiddle-multiplier fan-out: a fast 2-port unit and a minimal one.
    instance.library.add(
        IpBlock::builder("cmul_fast")
            .function(IpFunction::ComplexMul)
            .ports(2, 1)
            .rates(1, 1)
            .latency(jitter(&mut rng, 3) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 90) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("cmul_small")
            .function(IpFunction::ComplexMul)
            .ports(1, 1)
            .rates(2, 2)
            .latency(jitter(&mut rng, 5) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 50) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("win_mac")
            .function(IpFunction::Fir)
            .ports(2, 1)
            .rates(2, 2)
            .latency(jitter(&mut rng, 8) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 120) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("reorder_dma")
            .function(IpFunction::ZigZag)
            .ports(1, 1)
            .rates(4, 4)
            .latency(jitter(&mut rng, 4) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 60) as i64))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("mag_unit")
            .function(IpFunction::Quantizer)
            .ports(1, 1)
            .rates(2, 2)
            .latency(jitter(&mut rng, 3) as u32)
            .area(AreaTenths::from_tenths(jitter(&mut rng, 55) as i64))
            .build(),
    );

    // --- top-level s-calls (per input block) --------------------------
    let window = instance.add_scall(
        SCall::new(
            "window",
            IpFunction::Fir,
            Cycles(jitter(&mut rng, 9_000)),
            TransferJob::new(256, 256),
        )
        .with_freq(jitter_freq(&mut rng, 4)),
    );
    let fft256 = instance.add_scall(
        SCall::new(
            "fft256",
            IpFunction::Fft,
            Cycles(jitter(&mut rng, 48_000)),
            TransferJob::new(512, 512),
        )
        .with_freq(jitter_freq(&mut rng, 4))
        .with_plain_pc(Cycles(jitter(&mut rng, 300))),
    );
    let mag = instance.add_scall(
        SCall::new(
            "mag",
            IpFunction::Quantizer,
            Cycles(jitter(&mut rng, 7_000)),
            TransferJob::new(256, 128),
        )
        .with_freq(jitter_freq(&mut rng, 4)),
    );
    let reorder = instance.add_scall(
        SCall::new(
            "reorder",
            IpFunction::ZigZag,
            Cycles(jitter(&mut rng, 6_000)),
            TransferJob::new(256, 256),
        )
        .with_freq(jitter_freq(&mut rng, 4)),
    );
    // Windowing of the next block overlaps the reorder of this one.
    instance.scalls[window.index()].sw_pc_candidates = vec![reorder];

    // --- nested calls (off-path; decided through fft256) ---------------
    // The transform's software runs two butterfly passes; the first pass
    // calls the twiddle complex multiply.
    let bfly_early = instance.add_scall(
        SCall::new(
            "bfly_early",
            radix4(),
            Cycles(jitter(&mut rng, 11_000)),
            TransferJob::new(128, 128),
        )
        .with_freq(jitter_freq(&mut rng, 4)),
    );
    let bfly_late = instance.add_scall(
        SCall::new(
            "bfly_late",
            radix4(),
            Cycles(jitter(&mut rng, 10_000)),
            TransferJob::new(128, 128),
        )
        .with_freq(jitter_freq(&mut rng, 4)),
    );
    let twiddle = instance.add_scall(
        SCall::new(
            "twiddle",
            IpFunction::ComplexMul,
            Cycles(jitter(&mut rng, 8_000)),
            TransferJob::new(64, 64),
        )
        .with_freq(jitter_freq(&mut rng, 12)),
    );

    instance.add_path(vec![window, fft256, mag]);
    instance.add_path(vec![fft256, reorder]);

    // Bottom-up fold: twiddle into the early butterfly pass, both passes
    // into the transform — two hierarchy levels, validated specs. Pairing
    // the passes in one spec is what yields multi-IP composites (e.g.
    // "early pass on the radix-4 datapath, late pass on a cmul-assisted
    // variant"), the Fig. 11 union of child IP sets.
    let specs = [
        HierSpec {
            parent: bfly_early,
            children: vec![twiddle],
        },
        HierSpec {
            parent: fft256,
            children: vec![bfly_early, bfly_late],
        },
    ];
    let flat = ImpDb::generate(&instance);
    let imps = try_flatten(&flat, &specs, FlattenLimits::default())
        .expect("family hierarchy specs are structurally valid");
    let rg_sweep = achievable_rg_sweep(&instance, &imps);
    Workload {
        instance: std::sync::Arc::new(instance),
        imps: std::sync::Arc::new(imps),
        rg_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_core::{RequiredGains, SelectionAuditor, SolveOptions, Solver};

    #[test]
    fn canonical_shape_and_hierarchy_fold() {
        let w = workload();
        assert_eq!(w.instance.scalls.len(), 7);
        assert_eq!(w.instance.library.len(), 7);
        assert_eq!(w.instance.paths.len(), 2);
        // Children are consumed: their IMPs fold into the transform.
        for child in &w.instance.scalls[4..] {
            assert!(
                w.imps.for_scall(child.id).is_empty(),
                "child {} must be folded into the transform",
                child.name
            );
        }
        // The transform sees the monolithic engine *and* composites that
        // instantiate child IPs (radix4_dp / cmul units).
        let fft_imps = w.imps.for_scall(w.instance.scalls[1].id);
        assert!(
            fft_imps.iter().any(|i| i.ips.len() >= 2),
            "no multi-IP composite survived the fold"
        );
        assert!(
            fft_imps.iter().any(|i| i.ips.len() == 1),
            "the monolithic FFT engine disappeared"
        );
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(variant(2).imps.imps(), variant(2).imps.imps());
        assert_ne!(variant(2).imps.imps(), variant(3).imps.imps());
    }

    #[test]
    fn sweep_points_solve_and_audit_clean() {
        for seed in [0, 17] {
            let w = variant(seed);
            for &rg in &w.rg_sweep {
                let opts = SolveOptions::problem2(RequiredGains::uniform(rg));
                let sel = Solver::new(&w.instance)
                    .with_imps(w.imps.clone())
                    .solve(&opts)
                    .expect("achievable sweep point");
                let report = SelectionAuditor::new(&w.instance, &w.imps).audit(&sel, &opts);
                assert!(report.is_clean(), "seed {seed}: {}", report.to_json());
            }
        }
    }
}
