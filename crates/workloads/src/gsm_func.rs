//! A functional GSM-style speech coder built from the `partita-ip` kernels.
//!
//! The selection instances in [`crate::gsm`] carry the *decision structure*
//! of the paper's GSM(TDMA) evaluation; this module carries the *functional*
//! side: a miniature RPE-LTP-style codec whose stages are exactly the blocks
//! the IP library accelerates — preemphasis FIR, autocorrelation, Schur
//! recursion (reflection coefficients), long-term-prediction lag search by
//! cross-correlation, grid-decimated residual, and uniform APCM
//! quantisation. Encode → decode round-trips within the quantiser error
//! bound, which the test-suite pins.
//!
//! This is not bit-compatible GSM 06.10 (the paper's sources are not
//! available); it is the same *kind* of signal path, so co-simulating any
//! stage behind an interface template exercises realistic data.

use partita_ip::func::{cross_correlate, dequantize_uniform, quantize_uniform, FirFilter};

/// Samples per frame (GSM 06.10 uses 160; we keep the same).
pub const FRAME: usize = 160;
/// Subframes per frame for the LTP/RPE stage.
pub const SUBFRAMES: usize = 4;
/// RPE decimation factor: one of `GRID` interleaved grids is kept.
pub const GRID: usize = 3;
/// Quantiser step for the residual APCM stage.
pub const APCM_STEP: i32 = 64;
/// Preemphasis coefficient in Q8 (`~0.86`).
pub const PREEMPH_Q8: i32 = 220;

/// One encoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// Reflection coefficients (Q15) from the Schur recursion.
    pub reflection_q15: Vec<i32>,
    /// Per-subframe LTP lag estimates.
    pub ltp_lags: Vec<usize>,
    /// Per-subframe selected RPE grid offset (`0..GRID`).
    pub grids: Vec<usize>,
    /// APCM-quantised residual samples, grid-decimated.
    pub residual: Vec<i32>,
}

/// Applies the preemphasis filter `y[n] = x[n] − α·x[n−1]` (α in Q8).
#[must_use]
pub fn preemphasis(x: &[i32]) -> Vec<i32> {
    let mut prev = 0i64;
    x.iter()
        .map(|&v| {
            let y = i64::from(v) - (PREEMPH_Q8 as i64 * prev) / 256;
            prev = i64::from(v);
            y as i32
        })
        .collect()
}

/// Inverse of [`preemphasis`]: `x[n] = y[n] + α·x[n−1]`.
#[must_use]
pub fn deemphasis(y: &[i32]) -> Vec<i32> {
    let mut prev = 0i64;
    y.iter()
        .map(|&v| {
            let x = i64::from(v) + (PREEMPH_Q8 as i64 * prev) / 256;
            prev = x;
            x as i32
        })
        .collect()
}

/// Autocorrelation `r[k] = Σ x[n]·x[n+k]` for `k < order` (the correlator
/// IP's job).
#[must_use]
pub fn autocorrelation(x: &[i32], order: usize) -> Vec<i64> {
    cross_correlate(x, x, order)
}

/// Reflection coefficients (Q15) from autocorrelations via the
/// Levinson–Durbin recursion (the Schur hardware block computes the same
/// coefficients).
///
/// Returns at most `r.len() − 1` coefficients; stops early if the prediction
/// error collapses.
#[must_use]
pub fn schur_reflection_q15(r: &[i64]) -> Vec<i32> {
    if r.is_empty() || r[0] <= 0 {
        return Vec::new();
    }
    let order = r.len() - 1;
    let rf: Vec<f64> = r.iter().map(|&v| v as f64).collect();
    let mut k = Vec::with_capacity(order);
    let mut a = vec![1.0f64];
    let mut err = rf[0];
    for i in 1..=order {
        if err <= f64::EPSILON {
            break;
        }
        let acc: f64 = (1..i).map(|j| a[j] * rf[i - j]).sum();
        let ki = (-(rf[i] + acc) / err).clamp(-0.999_969, 0.999_969);
        // a'[j] = a[j] + k·a[i−j]
        let mut next = a.clone();
        next.push(0.0);
        for (j, slot) in next.iter_mut().enumerate().take(i + 1).skip(1) {
            *slot = a.get(j).copied().unwrap_or(0.0) + ki * a.get(i - j).copied().unwrap_or(0.0);
        }
        a = next;
        err *= 1.0 - ki * ki;
        k.push((ki * 32768.0) as i32);
    }
    k
}

/// Finds the best LTP lag for `sub` against `history` (the correlator IP):
/// the lag in `[min_lag, max_lag)` maximising the cross-correlation.
#[must_use]
pub fn ltp_lag(sub: &[i32], history: &[i32], min_lag: usize, max_lag: usize) -> usize {
    let mut best = min_lag;
    let mut best_score = i64::MIN;
    for lag in min_lag..max_lag {
        let score: i64 = sub
            .iter()
            .enumerate()
            .filter_map(|(n, &s)| {
                let idx = history.len() as isize - lag as isize + n as isize;
                if idx >= 0 && (idx as usize) < history.len() {
                    Some(i64::from(s) * i64::from(history[idx as usize]))
                } else {
                    None
                }
            })
            .sum();
        if score > best_score {
            best_score = score;
            best = lag;
        }
    }
    best
}

/// Selects the RPE grid (offset with maximum energy) and decimates.
#[must_use]
pub fn rpe_select(sub: &[i32]) -> (usize, Vec<i32>) {
    let mut best = 0usize;
    let mut best_energy = i64::MIN;
    for g in 0..GRID {
        let energy: i64 = sub
            .iter()
            .skip(g)
            .step_by(GRID)
            .map(|&v| i64::from(v) * i64::from(v))
            .sum();
        if energy > best_energy {
            best_energy = energy;
            best = g;
        }
    }
    let kept = sub.iter().skip(best).step_by(GRID).copied().collect();
    (best, kept)
}

/// Re-expands a decimated grid back to subframe length (zeros elsewhere).
#[must_use]
pub fn rpe_expand(grid: usize, kept: &[i32], len: usize) -> Vec<i32> {
    let mut out = vec![0; len];
    for (i, &v) in kept.iter().enumerate() {
        let idx = grid + i * GRID;
        if idx < len {
            out[idx] = v;
        }
    }
    out
}

/// Encodes one frame.
///
/// # Panics
///
/// Panics if `x.len() != FRAME`.
#[must_use]
pub fn encode(x: &[i32]) -> EncodedFrame {
    assert_eq!(x.len(), FRAME, "encode expects one {FRAME}-sample frame");
    let pre = preemphasis(x);
    let r = autocorrelation(&pre, 9);
    let reflection_q15 = schur_reflection_q15(&r);

    let sub_len = FRAME / SUBFRAMES;
    let mut ltp_lags = Vec::with_capacity(SUBFRAMES);
    let mut grids = Vec::with_capacity(SUBFRAMES);
    let mut residual = Vec::new();
    for s in 0..SUBFRAMES {
        let sub = &pre[s * sub_len..(s + 1) * sub_len];
        let history = &pre[..s * sub_len];
        let lag = if history.is_empty() {
            40
        } else {
            ltp_lag(sub, history, 16, 120.min(history.len().max(17)))
        };
        ltp_lags.push(lag);
        let (grid, kept) = rpe_select(sub);
        grids.push(grid);
        // Pad to the fixed per-subframe residual size so frames have a
        // uniform layout regardless of the selected grid offset.
        let mut q = quantize_uniform(&kept, APCM_STEP, 255);
        q.resize(sub_len.div_ceil(GRID), 0);
        residual.extend(q);
    }
    EncodedFrame {
        reflection_q15,
        ltp_lags,
        grids,
        residual,
    }
}

/// Decodes one frame back to (approximate) samples.
#[must_use]
pub fn decode(frame: &EncodedFrame) -> Vec<i32> {
    let sub_len = FRAME / SUBFRAMES;
    let per_sub = sub_len.div_ceil(GRID);
    let mut pre = Vec::with_capacity(FRAME);
    for s in 0..SUBFRAMES {
        let kept_q = &frame.residual[s * per_sub..(s + 1) * per_sub];
        let kept = dequantize_uniform(kept_q, APCM_STEP);
        let sub = rpe_expand(frame.grids[s], &kept, sub_len);
        pre.extend(sub);
    }
    deemphasis(&pre)
}

/// A streaming FIR weighting filter reused by the examples (the paper's
/// `st_filter` blocks): a short smoother over the reconstructed signal.
#[must_use]
pub fn smooth(x: &[i32]) -> Vec<i32> {
    let mut f = FirFilter::new(vec![1, 2, 1]);
    x.iter().map(|&v| (f.step(v) / 4) as i32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speechish(seed: i32) -> Vec<i32> {
        // A decaying pseudo-voiced signal: pitch pulses + noise.
        (0..FRAME as i32)
            .map(|n| {
                let pitch = if n % 40 == 0 { 4000 } else { 0 };
                let noise = ((n * 1103 + seed) % 257) - 128;
                let vowel = (f64::from(n) * 0.25).sin() * 1500.0;
                pitch + noise + vowel as i32
            })
            .collect()
    }

    #[test]
    fn preemphasis_roundtrip_is_exact_enough() {
        let x = speechish(7);
        let back = deemphasis(&preemphasis(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() <= 2, "{a} vs {b}");
        }
    }

    #[test]
    fn reflection_coefficients_are_stable() {
        let x = speechish(1);
        let r = autocorrelation(&preemphasis(&x), 9);
        let k = schur_reflection_q15(&r);
        assert!(!k.is_empty());
        for &ki in &k {
            assert!(ki.abs() < 32768, "|k| must stay below 1.0 in Q15, got {ki}");
        }
    }

    #[test]
    fn ltp_lag_finds_the_pitch_period() {
        // Periodic signal with period 40: the lag search must return a
        // multiple of 40 (±1 for boundary effects).
        let x: Vec<i32> = (0..FRAME as i32)
            .map(|n| if n % 40 == 0 { 1000 } else { 0 })
            .collect();
        let sub = &x[120..160];
        let lag = ltp_lag(sub, &x[..120], 16, 100);
        assert!(
            (lag % 40) <= 1 || (40 - lag % 40) <= 1,
            "lag {lag} should align with the 40-sample pitch"
        );
    }

    #[test]
    fn rpe_grid_roundtrip() {
        let sub: Vec<i32> = (0..40).map(|i| i * 3 - 60).collect();
        let (grid, kept) = rpe_select(&sub);
        assert!(grid < GRID);
        let expanded = rpe_expand(grid, &kept, 40);
        for (i, &v) in expanded.iter().enumerate() {
            if (i + GRID - grid).is_multiple_of(GRID) {
                assert_eq!(v, sub[i]);
            } else {
                assert_eq!(v, 0);
            }
        }
    }

    #[test]
    fn encode_decode_preserves_kept_samples_within_step() {
        let x = speechish(3);
        let enc = encode(&x);
        let dec = decode(&enc);
        assert_eq!(dec.len(), FRAME);
        // On the kept grid positions, the preemphasised signal must be
        // recovered within the APCM quantiser step.
        let pre = preemphasis(&x);
        let sub_len = FRAME / SUBFRAMES;
        let pre_hat: Vec<i32> = preemphasis(&dec);
        for s in 0..SUBFRAMES {
            let g = enc.grids[s];
            for i in (g..sub_len).step_by(GRID) {
                let idx = s * sub_len + i;
                let err = (pre[idx] - pre_hat[idx]).abs();
                assert!(
                    err <= APCM_STEP,
                    "kept sample {idx}: err {err} exceeds step {APCM_STEP}"
                );
            }
        }
    }

    #[test]
    fn encoded_frame_shape() {
        let enc = encode(&speechish(9));
        assert_eq!(enc.ltp_lags.len(), SUBFRAMES);
        assert_eq!(enc.grids.len(), SUBFRAMES);
        assert_eq!(
            enc.residual.len(),
            SUBFRAMES * (FRAME / SUBFRAMES).div_ceil(GRID)
        );
    }

    #[test]
    fn smoothing_reduces_energy_of_noise() {
        let noise: Vec<i32> = (0..256)
            .map(|n| if n % 2 == 0 { 100 } else { -100 })
            .collect();
        let smoothed = smooth(&noise);
        let e_in: i64 = noise.iter().map(|&v| i64::from(v) * i64::from(v)).sum();
        let e_out: i64 = smoothed.iter().map(|&v| i64::from(v) * i64::from(v)).sum();
        assert!(e_out < e_in / 4);
    }

    #[test]
    #[should_panic(expected = "expects one")]
    fn wrong_frame_size_panics() {
        let _ = encode(&[0; 3]);
    }
}
