//! GSM(TDMA) codec models calibrated to Tables 1 and 2.
//!
//! Gains and areas of the published implementation methods are taken
//! directly from the tables (e.g. `SC13: IP12,IF0,115037,3`); the remaining
//! s-calls, IPs and IMPs — the alternatives the paper's tool enumerated but
//! never selected — are filled in with dominated entries so the totals match
//! the reported counts (encoder: 18 s-calls / 23 IPs / 42 IMPs; decoder:
//! 11 s-calls / 10 IPs / 27 IMPs).

use partita_core::{Imp, ImpDb, Instance, ParallelChoice, SCall};
use partita_interface::{InterfaceKind, TransferJob};
use partita_ip::{IpBlock, IpFunction, IpId};
use partita_mop::{AreaTenths, CallSiteId, Cycles};

use crate::Workload;

/// Interface area model used in the calibration (tenths): IF0 is charged in
/// code memory (≈ 0), IF1 buffers cost 1.0, the IF2 FSM 0.5, IF3 1.5 — the
/// deltas visible in Table 1 when SC14 moves from IF1 to IF3 (+0.5 over the
/// buffer-only cost difference).
fn if_area(kind: InterfaceKind) -> AreaTenths {
    match kind {
        InterfaceKind::Type0 => AreaTenths::from_tenths(0),
        InterfaceKind::Type1 => AreaTenths::from_tenths(10),
        InterfaceKind::Type2 => AreaTenths::from_tenths(5),
        InterfaceKind::Type3 => AreaTenths::from_tenths(15),
    }
}

fn imp(sc: u32, ip: IpId, kind: InterfaceKind, gain: u64, parallel: ParallelChoice) -> Imp {
    Imp::new(
        CallSiteId(sc),
        vec![ip],
        kind,
        Cycles(gain),
        if_area(kind),
        parallel,
    )
}

/// Adds `count` filler IP blocks (never-selected library alternatives).
fn filler_ips(instance: &mut Instance, names: &[(&str, IpFunction, i64)]) -> Vec<IpId> {
    names
        .iter()
        .map(|(name, func, area_units)| {
            instance.library.add(
                IpBlock::builder(*name)
                    .function(func.clone())
                    .area(AreaTenths::from_units(*area_units))
                    .build(),
            )
        })
        .collect()
}

/// The GSM encoder instance of Table 1: 18 s-calls, 23 IPs, 42 IMPs.
///
/// The returned sweep reproduces the table's RG column.
#[must_use]
#[allow(clippy::vec_init_then_push)] // the pushes transcribe Table 1 row by row
pub fn encoder() -> Workload {
    let mut instance = Instance::new("gsm_encoder");

    // ---- IP library (23 blocks; ids are 1-based like the paper) ----
    // IP0 is a placeholder so that `IpId(12)` prints as the paper's IP12.
    let lib: Vec<(&str, IpFunction, i64)> = vec![
        ("pad", IpFunction::Custom("pad".into()), 99), // IP0 (unused)
        ("preemph_fir", IpFunction::Fir, 6),           // IP1
        ("offset_comp", IpFunction::Fir, 5),           // IP2
        ("lpc_analyzer", IpFunction::Custom("lpc".into()), 13), // IP3
        ("autocorr_a", IpFunction::Correlator, 9),     // IP4
        ("autocorr_b", IpFunction::Correlator, 15),    // IP5
        ("schur_recursion", IpFunction::Iir, 8),       // IP6
        ("lar_coder", IpFunction::Quantizer, 4),       // IP7
        ("lar_decoder", IpFunction::Quantizer, 4),     // IP8
        ("interp_narrow", IpFunction::InterpFilter, 3), // IP9
        ("interp_wide", IpFunction::InterpFilter, 2),  // IP10
        ("st_filter_a", IpFunction::Fir, 5),           // IP11
        ("st_filter_b", IpFunction::Fir, 3),           // IP12
        ("ltp_searcher", IpFunction::Correlator, 14),  // IP13
        ("ltp_filter", IpFunction::Iir, 7),            // IP14
        ("weighting_fir", IpFunction::Fir, 6),         // IP15
        ("rpe_grid_sel", IpFunction::Custom("rpe".into()), 25), // IP16 (2.5)
        ("rpe_quantizer", IpFunction::Quantizer, 3),   // IP17
        ("apcm_coder", IpFunction::Quantizer, 5),      // IP18
        ("apcm_decoder", IpFunction::Quantizer, 5),    // IP19
        ("multi_dsp_a", IpFunction::Fir, 16),          // IP20 (M-IP)
        ("multi_dsp_b", IpFunction::Iir, 18),          // IP21 (M-IP)
        ("frame_packer", IpFunction::Custom("pack".into()), 6), // IP22
    ];
    let mut ids = Vec::new();
    for (i, (name, func, area)) in lib.iter().enumerate() {
        let area = if *name == "rpe_grid_sel" {
            AreaTenths::from_tenths(*area) // 2.5 units
        } else {
            AreaTenths::from_units(*area)
        };
        let id = instance.library.add(
            IpBlock::builder(*name)
                .function(func.clone())
                .area(area)
                .build(),
        );
        debug_assert_eq!(id.index(), i);
        ids.push(id);
    }
    let ip = |n: u32| IpId(n);

    // ---- 18 s-calls (SC1..SC18; SC0 is a placeholder) ----
    let names: [(&str, IpFunction, u64); 19] = [
        ("pad", IpFunction::Custom("pad".into()), 1),
        ("preemphasis", IpFunction::Fir, 19_000), // SC1
        ("lpc_analysis", IpFunction::Custom("lpc".into()), 52_000), // SC2
        ("autocorrelation", IpFunction::Correlator, 24_000), // SC3
        ("reflection_coeffs", IpFunction::Iir, 14_000), // SC4
        ("lar_quantize", IpFunction::Quantizer, 9_000), // SC5
        ("lar_interpolate", IpFunction::InterpFilter, 1_600), // SC6
        ("st_filter_seg1", IpFunction::Fir, 16_000), // SC7
        ("ltp_lag_search", IpFunction::Correlator, 30_000), // SC8
        ("st_filter_seg2", IpFunction::Fir, 17_000), // SC9
        ("ltp_interpolate", IpFunction::InterpFilter, 1_600), // SC10
        ("st_filter_seg3", IpFunction::Fir, 16_000), // SC11
        ("weight_interpolate", IpFunction::InterpFilter, 1_600), // SC12
        ("st_analysis_filter", IpFunction::Fir, 140_000), // SC13
        ("ltp_residual_search", IpFunction::Correlator, 200_000), // SC14
        ("rpe_grid_select", IpFunction::Custom("rpe".into()), 11_000), // SC15
        ("rpe_quantize", IpFunction::Quantizer, 15_000), // SC16
        ("frame_pack", IpFunction::Custom("pack".into()), 6_000), // SC17
        ("comfort_noise", IpFunction::Quantizer, 4_000), // SC18
    ];
    for (name, func, sw) in &names {
        instance.add_scall(SCall::new(
            *name,
            func.clone(),
            Cycles(*sw),
            TransferJob::new(160, 160),
        ));
    }
    // Single execution path over SC1..SC18 (SC0 is never on a path).
    instance.add_path((1..=18).map(CallSiteId).collect());

    // ---- 42 IMPs ----
    let mut imps: Vec<Imp> = Vec::new();
    // Published (selected) methods of Table 1.
    imps.push(imp(
        13,
        ip(12),
        InterfaceKind::Type0,
        115_037,
        ParallelChoice::None,
    ));
    imps.push(imp(
        7,
        ip(12),
        InterfaceKind::Type0,
        12_531,
        ParallelChoice::None,
    ));
    imps.push(imp(
        9,
        ip(12),
        InterfaceKind::Type0,
        13_489,
        ParallelChoice::None,
    ));
    imps.push(imp(
        11,
        ip(12),
        InterfaceKind::Type0,
        12_531,
        ParallelChoice::None,
    ));
    // SC2 exploits a parallel code on its buffered interface.
    imps.push(imp(
        2,
        ip(3),
        InterfaceKind::Type1,
        41_670,
        ParallelChoice::PlainPc,
    ));
    imps.push(imp(
        14,
        ip(13),
        InterfaceKind::Type1,
        162_612,
        ParallelChoice::None,
    ));
    imps.push(imp(
        14,
        ip(13),
        InterfaceKind::Type3,
        164_532,
        ParallelChoice::PlainPc,
    ));
    imps.push(imp(
        15,
        ip(16),
        InterfaceKind::Type2,
        8_200,
        ParallelChoice::None,
    ));
    imps.push(imp(
        16,
        ip(17),
        InterfaceKind::Type0,
        11_576,
        ParallelChoice::None,
    ));
    imps.push(imp(
        6,
        ip(10),
        InterfaceKind::Type0,
        978,
        ParallelChoice::None,
    ));
    imps.push(imp(
        10,
        ip(10),
        InterfaceKind::Type0,
        978,
        ParallelChoice::None,
    ));
    imps.push(imp(
        12,
        ip(10),
        InterfaceKind::Type0,
        978,
        ParallelChoice::None,
    ));
    // One IMP generated through the s-call hierarchy: the LPC analyzer
    // composite covering SC2's inner autocorrelation (uses IP3 + IP4).
    imps.push(Imp::new(
        CallSiteId(2),
        vec![ip(3), ip(4)],
        InterfaceKind::Type1,
        Cycles(43_100),
        if_area(InterfaceKind::Type1) + if_area(InterfaceKind::Type0),
        ParallelChoice::None,
    ));
    // One IMP using the software implementation of another s-call (SC17) as
    // its parallel code — the third parallel-code exploiter.
    imps.push(imp(
        8,
        ip(21),
        InterfaceKind::Type3,
        24_500,
        ParallelChoice::SwScalls(vec![CallSiteId(17)]),
    ));
    // Dominated alternatives (never optimal, but part of the 42-entry
    // database the tool enumerates).
    let filler: &[(u32, u32, InterfaceKind, u64)] = &[
        (1, 1, InterfaceKind::Type0, 9_400),
        (1, 2, InterfaceKind::Type0, 8_100),
        (1, 20, InterfaceKind::Type1, 12_800),
        (2, 21, InterfaceKind::Type1, 30_900),
        (3, 4, InterfaceKind::Type0, 11_300),
        (3, 5, InterfaceKind::Type1, 13_800),
        (4, 6, InterfaceKind::Type0, 6_200),
        (4, 21, InterfaceKind::Type1, 7_000),
        (5, 7, InterfaceKind::Type0, 3_800),
        (5, 8, InterfaceKind::Type0, 3_300),
        (6, 9, InterfaceKind::Type1, 1_100),
        (7, 11, InterfaceKind::Type0, 9_900),
        (7, 20, InterfaceKind::Type1, 10_800),
        (8, 21, InterfaceKind::Type1, 21_700),
        (8, 5, InterfaceKind::Type1, 14_900),
        (9, 11, InterfaceKind::Type0, 10_400),
        (10, 9, InterfaceKind::Type1, 1_050),
        (11, 11, InterfaceKind::Type0, 9_900),
        (12, 9, InterfaceKind::Type1, 1_020),
        (13, 11, InterfaceKind::Type0, 88_000),
        (13, 20, InterfaceKind::Type1, 96_500),
        (14, 5, InterfaceKind::Type1, 35_000),
        (15, 16, InterfaceKind::Type0, 6_250),
        (16, 18, InterfaceKind::Type0, 8_900),
        (17, 22, InterfaceKind::Type0, 2_700),
        (18, 19, InterfaceKind::Type0, 1_900),
        (18, 18, InterfaceKind::Type0, 1_700),
        (16, 19, InterfaceKind::Type0, 8_100),
    ];
    for &(sc, ipn, kind, gain) in filler {
        imps.push(imp(sc, ip(ipn), kind, gain, ParallelChoice::None));
    }
    debug_assert_eq!(imps.len(), 42, "table 1 reports 42 IMPs");
    debug_assert_eq!(instance.library.len(), 23, "table 1 reports 23 IPs");
    debug_assert_eq!(instance.scalls.len() - 1, 18, "encoder has 18 s-calls");

    Workload {
        instance: std::sync::Arc::new(instance),
        imps: std::sync::Arc::new(ImpDb::from_imps(imps)),
        rg_sweep: [
            47_740u64, 95_480, 143_221, 190_961, 238_702, 286_442, 334_182, 381_923,
        ]
        .into_iter()
        .map(Cycles)
        .collect(),
    }
}

/// The GSM decoder instance of Table 2: 11 s-calls, 10 IPs, 27 IMPs.
#[must_use]
#[allow(clippy::vec_init_then_push)] // the pushes transcribe Table 2 row by row
pub fn decoder() -> Workload {
    let mut instance = Instance::new("gsm_decoder");

    // 10 IPs (+ placeholder IP0). IP2: short filter; IP4: big multi filter;
    // IP5: synthesis filter; IP6: interpolator; IP8: APCM decoder;
    // IP10: postprocessor.
    let lib: Vec<(&str, IpFunction, i64)> = vec![
        ("pad", IpFunction::Custom("pad".into()), 99), // IP0 (unused)
        ("deinterleave", IpFunction::Custom("pack".into()), 4), // IP1
        ("short_filter", IpFunction::Fir, 2),          // IP2
        ("ltp_synth", IpFunction::Iir, 6),             // IP3
        ("wide_filter", IpFunction::Fir, 32),          // IP4
        ("synth_filter", IpFunction::Iir, 4),          // IP5
        ("post_interp", IpFunction::InterpFilter, 3),  // IP6
        ("lar_decoder", IpFunction::Quantizer, 4),     // IP7
        ("apcm_decoder", IpFunction::Quantizer, 5),    // IP8
        ("deemph_fir", IpFunction::Fir, 3),            // IP9
        ("postproc", IpFunction::Custom("post".into()), 3), // IP10
    ];
    filler_ips(&mut instance, &lib);
    let ip = |n: u32| IpId(n);

    let names: [(&str, u64); 12] = [
        ("pad", 1),
        ("frame_unpack", 5_000),      // SC1
        ("st_synth_seg1", 18_000),    // SC2
        ("param_decode_1", 4_900),    // SC3
        ("st_synth_seg2", 19_000),    // SC4
        ("param_decode_2", 4_900),    // SC5
        ("st_synth_seg3", 18_000),    // SC6
        ("param_decode_3", 4_900),    // SC7
        ("st_synth_main", 150_000),   // SC8
        ("apcm_decode", 12_000),      // SC9
        ("post_interpolate", 18_000), // SC10
        ("postprocess", 12_500),      // SC11
    ];
    for (name, sw) in &names {
        instance.add_scall(SCall::new(
            *name,
            IpFunction::Fir,
            Cycles(*sw),
            TransferJob::new(160, 160),
        ));
    }
    instance.add_path((1..=11).map(CallSiteId).collect());

    let mut imps: Vec<Imp> = Vec::new();
    // Published methods of Table 2.
    imps.push(imp(
        2,
        ip(5),
        InterfaceKind::Type0,
        13_737,
        ParallelChoice::None,
    ));
    imps.push(imp(
        4,
        ip(5),
        InterfaceKind::Type0,
        14_787,
        ParallelChoice::None,
    ));
    imps.push(imp(
        6,
        ip(5),
        InterfaceKind::Type0,
        13_737,
        ParallelChoice::None,
    ));
    imps.push(imp(
        8,
        ip(5),
        InterfaceKind::Type0,
        126_087,
        ParallelChoice::None,
    ));
    imps.push(imp(
        10,
        ip(6),
        InterfaceKind::Type0,
        14_544,
        ParallelChoice::None,
    ));
    imps.push(imp(
        10,
        ip(6),
        InterfaceKind::Type2,
        15_048,
        ParallelChoice::None,
    ));
    imps.push(imp(
        9,
        ip(8),
        InterfaceKind::Type0,
        8_568,
        ParallelChoice::None,
    ));
    imps.push(imp(
        11,
        ip(10),
        InterfaceKind::Type0,
        9_028,
        ParallelChoice::None,
    ));
    imps.push(imp(
        1,
        ip(2),
        InterfaceKind::Type0,
        978,
        ParallelChoice::None,
    ));
    imps.push(imp(
        3,
        ip(2),
        InterfaceKind::Type0,
        978,
        ParallelChoice::None,
    ));
    imps.push(imp(
        5,
        ip(2),
        InterfaceKind::Type0,
        978,
        ParallelChoice::None,
    ));
    imps.push(imp(
        7,
        ip(2),
        InterfaceKind::Type0,
        978,
        ParallelChoice::None,
    ));
    imps.push(imp(
        2,
        ip(4),
        InterfaceKind::Type0,
        14_235,
        ParallelChoice::None,
    ));
    imps.push(imp(
        4,
        ip(4),
        InterfaceKind::Type0,
        15_327,
        ParallelChoice::None,
    ));
    imps.push(imp(
        6,
        ip(4),
        InterfaceKind::Type0,
        14_235,
        ParallelChoice::None,
    ));
    imps.push(imp(
        8,
        ip(4),
        InterfaceKind::Type0,
        131_079,
        ParallelChoice::None,
    ));
    // Dominated alternatives (11 more → 27 total).
    let filler: &[(u32, u32, InterfaceKind, u64)] = &[
        (1, 1, InterfaceKind::Type0, 760),
        (2, 3, InterfaceKind::Type0, 9_100),
        (3, 7, InterfaceKind::Type0, 640),
        (4, 3, InterfaceKind::Type0, 9_900),
        (5, 7, InterfaceKind::Type0, 640),
        (6, 3, InterfaceKind::Type0, 9_100),
        (8, 3, InterfaceKind::Type1, 94_000),
        (9, 7, InterfaceKind::Type0, 5_300),
        (10, 9, InterfaceKind::Type0, 10_900),
        (11, 7, InterfaceKind::Type0, 6_100),
        (7, 7, InterfaceKind::Type0, 640),
    ];
    for &(sc, ipn, kind, gain) in filler {
        imps.push(imp(sc, ip(ipn), kind, gain, ParallelChoice::None));
    }
    debug_assert_eq!(imps.len(), 27, "table 2 reports 27 IMPs");
    debug_assert_eq!(instance.library.len(), 11, "10 IPs + placeholder");

    Workload {
        instance: std::sync::Arc::new(instance),
        imps: std::sync::Arc::new(ImpDb::from_imps(imps)),
        rg_sweep: [
            22_240u64, 44_481, 111_203, 133_444, 155_684, 177_925, 200_166, 211_286,
        ]
        .into_iter()
        .map(Cycles)
        .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_core::{RequiredGains, SolveOptions, Solver};

    #[test]
    fn encoder_shape_matches_paper() {
        let w = encoder();
        assert_eq!(w.imps.len(), 42);
        assert_eq!(w.instance.library.len(), 23);
        assert_eq!(w.instance.scalls.len(), 19); // SC0 placeholder + 18
        assert_eq!(w.rg_sweep.len(), 8);
    }

    #[test]
    fn decoder_shape_matches_paper() {
        let w = decoder();
        assert_eq!(w.imps.len(), 27);
        assert_eq!(w.instance.library.len(), 11);
        assert_eq!(w.rg_sweep.len(), 8);
    }

    #[test]
    fn encoder_row1_instantiates_only_ip12() {
        let w = encoder();
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(
                47_740,
            ))))
            .unwrap();
        // The paper reports SC13 alone (G = 115037); our gain-maximising
        // area tie-break also merges the other three IP12 s-calls in at the
        // same (optimal) area — see EXPERIMENTS.md. The area, the IP and the
        // S-instruction count all match the published row.
        assert!(sel.chosen().iter().all(|i| i.ips == vec![IpId(12)]));
        assert!(sel.chosen().iter().any(|i| i.scall == CallSiteId(13)));
        assert!(sel.total_gain() >= Cycles(115_037));
        assert_eq!(sel.total_area(), AreaTenths::from_units(3));
        assert_eq!(sel.s_instruction_count(), 1);
    }

    #[test]
    fn decoder_last_row_switches_to_wide_filter() {
        let w = decoder();
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(
                211_286,
            ))))
            .unwrap();
        // The paper: the four synthesis segments move from IP5 to IP4 and
        // SC10's interface escalates from IF0 to IF2.
        assert!(sel
            .chosen()
            .iter()
            .any(|i| i.scall == CallSiteId(8) && i.ips == vec![IpId(4)]));
        assert!(sel
            .chosen()
            .iter()
            .any(|i| i.scall == CallSiteId(10) && i.interface == InterfaceKind::Type2));
        assert_eq!(sel.total_gain(), Cycles(211_432));
    }
}
