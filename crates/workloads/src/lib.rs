//! Workload models for the DAC'99 evaluation (§5) and the scaling corpus.
//!
//! The paper evaluates on two real DSP applications — a GSM(TDMA) codec and
//! a JPEG codec — whose C sources and input data are not available. This
//! crate substitutes **calibrated synthetic models**: instances whose s-call
//! counts, IP libraries, IMP counts, gains and areas are back-derived from
//! the published Tables 1–3, so the selector faces the identical decision
//! structure (see `DESIGN.md`, "Substitutions").
//!
//! * [`gsm::encoder`] — 18 s-calls, 23 IPs, 42 IMPs (Table 1);
//! * [`gsm::decoder`] — 11 s-calls, 10 IPs, 27 IMPs (Table 2);
//! * [`jpeg::encoder`] — 2 top-level s-calls, 5 IPs, 7 hierarchy-flattened
//!   IMPs for the 2D-DCT plus 2 for zig-zag (Table 3);
//! * [`gsm_func`] — a functional RPE-LTP-style mini codec built from the
//!   `partita-ip` kernels (the signal path behind the GSM instances);
//! * [`synth`] — a parameterized seeded instance generator for scaling
//!   studies (fan-out / conflict-density / hierarchy / kind-mix knobs and
//!   order-of-magnitude presets);
//! * [`toy`] — a small Partita-C program exercising the full frontend →
//!   profile → parallel-code → solve pipeline.
//!
//! Beyond the paper's tables, four structurally distinct DSP **workload
//! families** populate the committed instance corpus (selection heuristics
//! that look optimal on one benchmark diverge across a diverse set):
//!
//! * [`viterbi`] — a convolutional-code Viterbi decoder (branch metrics,
//!   add-compare-select, traceback);
//! * [`adpcm`] — an ADPCM transcoder (predictor, quantizer pair, step
//!   adaptation, reconstruction);
//! * [`lms`] — an LMS echo canceller (estimation FIR, correlation update,
//!   coefficient update, double-talk detection);
//! * [`fft_radix4`] — a radix-4 FFT pipeline whose transform s-call folds
//!   butterfly/twiddle children through the Fig. 11 hierarchy flatten.
//!
//! The [`corpus`] module ties the families and the synth presets to the
//! committed manifest (`tests/corpus/manifest.json`) that the differential,
//! determinism, audit and benchsuite gates all iterate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adpcm;
pub mod corpus;
pub mod fft_radix4;
pub mod gsm;
pub mod gsm_func;
pub mod jpeg;
pub mod lms;
pub mod synth;
pub mod toy;
pub mod viterbi;

use partita_core::{ImpDb, Instance, SCall};
use partita_mop::Cycles;
use rand::rngs::StdRng;
use rand::Rng;

/// Calibration jitter for the family generators: `base` scaled by a seeded
/// 90–110 % factor (never below 1). Structure stays fixed across a family;
/// only magnitudes move.
pub(crate) fn jitter(rng: &mut StdRng, base: u64) -> u64 {
    (base * rng.gen_range(90..=110) / 100).max(1)
}

/// Frequency jitter: `base` shifted by −1/0/+1, floored at 1.
pub(crate) fn jitter_freq(rng: &mut StdRng, base: u64) -> u64 {
    (base + rng.gen_range(0..=2)).saturating_sub(1).max(1)
}

/// A workload: the problem instance plus its IMP database.
///
/// Both are held behind `Arc` handles: a workload is built once and then
/// fanned out across sweeps, batches and benchmark repetitions, so cloning
/// a workload (or passing `imps.clone()` to
/// [`partita_core::Solver::with_imps`]) copies pointers, never the
/// instance or the database.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The selection-problem instance.
    pub instance: std::sync::Arc<partita_core::Instance>,
    /// The implementation-method database.
    pub imps: std::sync::Arc<partita_core::ImpDb>,
    /// The required-gain sweep the paper's table uses (RG column).
    pub rg_sweep: Vec<partita_mop::Cycles>,
}

/// A four-point required-gain sweep (20–80 % of the maximum gain achievable
/// on the weakest path) that is feasible by construction.
///
/// A uniform RG binds each path separately, so the ceiling is the *minimum*
/// over paths of the per-path total of each s-call's best **conflict-free**
/// gain — IMPs that consume other s-calls' software (`SwScalls` parallel
/// choices) are excluded because they cannot all be selected together. Every
/// generated family and synth preset derives its sweep through this helper,
/// which is what lets the corpus gates expect feasibility at every point.
#[must_use]
pub fn achievable_rg_sweep(instance: &Instance, imps: &ImpDb) -> Vec<Cycles> {
    let best_of = |sc: &SCall| {
        imps.for_scall(sc.id)
            .iter()
            .filter(|i| i.parallel.consumed_scalls().is_empty())
            .map(|i| i.gain.get())
            .max()
            .unwrap_or(0)
    };
    let max_gain: u64 = instance
        .paths
        .iter()
        .map(|p| {
            p.scalls
                .iter()
                .filter_map(|&sc| instance.scall(sc))
                .map(best_of)
                .sum::<u64>()
        })
        .min()
        .unwrap_or(0);
    (1..=4).map(|k| Cycles(max_gain * k / 5)).collect()
}
