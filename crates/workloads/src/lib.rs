//! Workload models for the DAC'99 evaluation (§5).
//!
//! The paper evaluates on two real DSP applications — a GSM(TDMA) codec and
//! a JPEG codec — whose C sources and input data are not available. This
//! crate substitutes **calibrated synthetic models**: instances whose s-call
//! counts, IP libraries, IMP counts, gains and areas are back-derived from
//! the published Tables 1–3, so the selector faces the identical decision
//! structure (see `DESIGN.md`, "Substitutions").
//!
//! * [`gsm::encoder`] — 18 s-calls, 23 IPs, 42 IMPs (Table 1);
//! * [`gsm::decoder`] — 11 s-calls, 10 IPs, 27 IMPs (Table 2);
//! * [`jpeg::encoder`] — 2 top-level s-calls, 5 IPs, 7 hierarchy-flattened
//!   IMPs for the 2D-DCT plus 2 for zig-zag (Table 3);
//! * [`gsm_func`] — a functional RPE-LTP-style mini codec built from the
//!   `partita-ip` kernels (the signal path behind the GSM instances);
//! * [`synth`] — a seeded random instance generator for scaling studies and
//!   ablations;
//! * [`toy`] — a small Partita-C program exercising the full frontend →
//!   profile → parallel-code → solve pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gsm;
pub mod gsm_func;
pub mod jpeg;
pub mod synth;
pub mod toy;

/// A workload: the problem instance plus its IMP database.
///
/// Both are held behind `Arc` handles: a workload is built once and then
/// fanned out across sweeps, batches and benchmark repetitions, so cloning
/// a workload (or passing `imps.clone()` to
/// [`partita_core::Solver::with_imps`]) copies pointers, never the
/// instance or the database.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The selection-problem instance.
    pub instance: std::sync::Arc<partita_core::Instance>,
    /// The implementation-method database.
    pub imps: std::sync::Arc<partita_core::ImpDb>,
    /// The required-gain sweep the paper's table uses (RG column).
    pub rg_sweep: Vec<partita_mop::Cycles>,
}
