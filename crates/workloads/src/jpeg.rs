//! JPEG encoder model calibrated to Table 3.
//!
//! "The JPEG encoder has 2D-DCT as its main function. 2D-DCT consists of two
//! 1D-DCTs, and 1D-DCT calls FFT. In FFT, a number of complex number
//! multiplications are performed. We supported five IPs: one for 2D-DCT,
//! one for 1D-DCT, one for FFT, one for complex multiplication, and one for
//! zig_zag. Seven IMPs were generated for 2D-DCT with considering the
//! hierarchy and two IMPs were generated for zig_zag."
//!
//! [`encoder`] carries the seven flattened IMPs directly (calibrated to the
//! table); [`encoder_hierarchical`] builds the composite IMPs through
//! [`partita_core::hierarchy::flatten`] from explicit child call sites,
//! demonstrating the mechanism of Fig. 11.

use partita_core::hierarchy::{flatten, FlattenLimits, HierSpec};
use partita_core::{Imp, ImpDb, Instance, ParallelChoice, SCall};
use partita_interface::{InterfaceKind, TransferJob};
use partita_ip::{IpBlock, IpFunction, IpId};
use partita_mop::{AreaTenths, CallSiteId, Cycles};

use crate::Workload;

fn add_jpeg_library(instance: &mut Instance) {
    // IP0 placeholder keeps the paper's 1-based ids.
    let lib: Vec<(&str, IpFunction, i64)> = vec![
        ("pad", IpFunction::Custom("pad".into()), 990), // IP0 (unused)
        ("dct2d_engine", IpFunction::Dct2d, 260),       // IP1: 26.0
        ("dct1d_engine", IpFunction::Dct1d, 100),       // IP2: 10.0
        ("fft_engine", IpFunction::Fft, 170),           // IP3: 17.0
        ("cmul_unit", IpFunction::ComplexMul, 40),      // IP4: 4.0
        ("zigzag_scanner", IpFunction::ZigZag, 50),     // IP5: 5.0
    ];
    for (name, func, tenths) in lib {
        instance.library.add(
            IpBlock::builder(name)
                .function(func)
                .area(AreaTenths::from_tenths(tenths))
                .build(),
        );
    }
}

fn if_area(kind: InterfaceKind) -> AreaTenths {
    match kind {
        InterfaceKind::Type0 => AreaTenths::from_tenths(0),
        InterfaceKind::Type1 => AreaTenths::from_tenths(10),
        InterfaceKind::Type2 => AreaTenths::from_tenths(5),
        InterfaceKind::Type3 => AreaTenths::from_tenths(15),
    }
}

/// The Table 3 instance: SC1 = 2D-DCT (seven IMPs), SC2 = zig_zag (two).
#[must_use]
pub fn encoder() -> Workload {
    let mut instance = Instance::new("jpeg_encoder");
    add_jpeg_library(&mut instance);
    let ip = |n: u32| IpId(n);

    instance.add_scall(SCall::new(
        "pad",
        IpFunction::Custom("pad".into()),
        Cycles(1),
        TransferJob::new(2, 2),
    ));
    let sc1 = instance.add_scall(SCall::new(
        "dct2d",
        IpFunction::Dct2d,
        Cycles(40_000_000),
        TransferJob::new(64, 64),
    ));
    let sc2 = instance.add_scall(SCall::new(
        "zig_zag",
        IpFunction::ZigZag,
        Cycles(160_000),
        TransferJob::new(64, 64),
    ));
    instance.add_path(vec![sc1, sc2]);

    let mk = |sc: CallSiteId, ips: Vec<IpId>, kind, gain: u64, par| {
        Imp::new(sc, ips, kind, Cycles(gain), if_area(kind), par)
    };
    let imps = vec![
        // --- the seven 2D-DCT IMPs (hierarchy-flattened) ---
        // Only the inner complex multiplications accelerated.
        mk(
            sc1,
            vec![ip(4)],
            InterfaceKind::Type0,
            15_040_512,
            ParallelChoice::None,
        ),
        // Only the FFT accelerated.
        mk(
            sc1,
            vec![ip(3)],
            InterfaceKind::Type1,
            30_500_000,
            ParallelChoice::None,
        ),
        // FFT + C-MUL together (a deeper composite).
        mk(
            sc1,
            vec![ip(3), ip(4)],
            InterfaceKind::Type1,
            31_000_000,
            ParallelChoice::None,
        ),
        // Both 1D-DCT passes accelerated.
        mk(
            sc1,
            vec![ip(2)],
            InterfaceKind::Type1,
            37_081_088,
            ParallelChoice::None,
        ),
        mk(
            sc1,
            vec![ip(2)],
            InterfaceKind::Type3,
            37_090_000,
            ParallelChoice::PlainPc,
        ),
        // The dedicated 2D-DCT engine.
        mk(
            sc1,
            vec![ip(1)],
            InterfaceKind::Type1,
            37_717_440,
            ParallelChoice::None,
        ),
        mk(
            sc1,
            vec![ip(1)],
            InterfaceKind::Type3,
            37_729_728,
            ParallelChoice::PlainPc,
        ),
        // --- the two zig_zag IMPs ---
        mk(
            sc2,
            vec![ip(5)],
            InterfaceKind::Type2,
            113_984,
            ParallelChoice::None,
        ),
        mk(
            sc2,
            vec![ip(5)],
            InterfaceKind::Type0,
            91_000,
            ParallelChoice::None,
        ),
    ];
    debug_assert_eq!(imps.len(), 9, "7 dct2d + 2 zig_zag IMPs");

    Workload {
        instance: std::sync::Arc::new(instance),
        imps: std::sync::Arc::new(ImpDb::from_imps(imps)),
        rg_sweep: [
            12_157_384u64,
            20_262_307,
            37_195_000,
            37_282_645,
            37_843_700,
        ]
        .into_iter()
        .map(Cycles)
        .collect(),
    }
}

/// The same application modelled with explicit child call sites (two 1D-DCT
/// passes, their FFTs, the FFTs' complex-multiply loops), with the 2D-DCT's
/// composite IMPs produced by *IMP flatten* — the paper's Fig. 11 flow.
#[must_use]
pub fn encoder_hierarchical() -> Workload {
    let mut instance = Instance::new("jpeg_encoder_hierarchical");
    add_jpeg_library(&mut instance);
    let ip = |n: u32| IpId(n);

    instance.add_scall(SCall::new(
        "pad",
        IpFunction::Custom("pad".into()),
        Cycles(1),
        TransferJob::new(2, 2),
    ));
    let dct2d = instance.add_scall(SCall::new(
        "dct2d",
        IpFunction::Dct2d,
        Cycles(40_000_000),
        TransferJob::new(64, 64),
    ));
    let zigzag = instance.add_scall(SCall::new(
        "zig_zag",
        IpFunction::ZigZag,
        Cycles(160_000),
        TransferJob::new(64, 64),
    ));
    // Children: the two 1D-DCT passes, each with an FFT, each FFT with its
    // complex-multiply loop.
    let dct1d_a = instance.add_scall(SCall::new(
        "dct1d_rows",
        IpFunction::Dct1d,
        Cycles(20_000_000),
        TransferJob::new(64, 64),
    ));
    let dct1d_b = instance.add_scall(SCall::new(
        "dct1d_cols",
        IpFunction::Dct1d,
        Cycles(20_000_000),
        TransferJob::new(64, 64),
    ));
    let fft_a = instance.add_scall(SCall::new(
        "fft_rows",
        IpFunction::Fft,
        Cycles(17_000_000),
        TransferJob::new(64, 64),
    ));
    let fft_b = instance.add_scall(SCall::new(
        "fft_cols",
        IpFunction::Fft,
        Cycles(17_000_000),
        TransferJob::new(64, 64),
    ));
    let cmul_a = instance.add_scall(SCall::new(
        "cmul_rows",
        IpFunction::ComplexMul,
        Cycles(9_000_000),
        TransferJob::new(4, 2),
    ));
    let cmul_b = instance.add_scall(SCall::new(
        "cmul_cols",
        IpFunction::ComplexMul,
        Cycles(9_000_000),
        TransferJob::new(4, 2),
    ));
    instance.add_path(vec![dct2d, zigzag]);

    let mk = |sc: CallSiteId, ips: Vec<IpId>, kind, gain: u64| {
        Imp::new(
            sc,
            ips,
            kind,
            Cycles(gain),
            if_area(kind),
            ParallelChoice::None,
        )
    };
    // Leaf/intermediate IMPs; flatten folds them into the 2D-DCT.
    let db = ImpDb::from_imps(vec![
        mk(dct2d, vec![ip(1)], InterfaceKind::Type1, 37_717_440),
        mk(dct1d_a, vec![ip(2)], InterfaceKind::Type1, 18_540_544),
        mk(dct1d_b, vec![ip(2)], InterfaceKind::Type1, 18_540_544),
        mk(fft_a, vec![ip(3)], InterfaceKind::Type1, 15_250_000),
        mk(fft_b, vec![ip(3)], InterfaceKind::Type1, 15_250_000),
        mk(cmul_a, vec![ip(4)], InterfaceKind::Type0, 7_520_256),
        mk(cmul_b, vec![ip(4)], InterfaceKind::Type0, 7_520_256),
        mk(zigzag, vec![ip(5)], InterfaceKind::Type2, 113_984),
    ]);
    // Bottom-up specs: fold cmul into fft, fft into dct1d, dct1ds into dct2d.
    let specs = vec![
        HierSpec {
            parent: fft_a,
            children: vec![cmul_a],
        },
        HierSpec {
            parent: fft_b,
            children: vec![cmul_b],
        },
        HierSpec {
            parent: dct1d_a,
            children: vec![fft_a],
        },
        HierSpec {
            parent: dct1d_b,
            children: vec![fft_b],
        },
        HierSpec {
            parent: dct2d,
            children: vec![dct1d_a, dct1d_b],
        },
    ];
    // `flatten` replaces child IMPs with parent composites — but the direct
    // child IMPs (e.g. "accelerate only dct1d") must survive as composites
    // of the parent, which is exactly what the fold produces.
    let flat = flatten(&db, &specs, FlattenLimits::default());

    Workload {
        instance: std::sync::Arc::new(instance),
        imps: std::sync::Arc::new(flat),
        rg_sweep: [12_157_384u64, 20_262_307, 37_000_000]
            .into_iter()
            .map(Cycles)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_core::{RequiredGains, SolveOptions, Solver};

    fn solve(w: &Workload, rg: u64) -> partita_core::Selection {
        Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(rg))))
            .unwrap()
    }

    #[test]
    fn table3_row1_uses_cmul_only() {
        let w = encoder();
        let sel = solve(&w, 12_157_384);
        assert_eq!(sel.chosen().len(), 1);
        assert_eq!(sel.chosen()[0].ips, vec![IpId(4)]);
        assert_eq!(sel.total_gain(), Cycles(15_040_512));
        assert_eq!(sel.total_area(), AreaTenths::from_units(4));
    }

    #[test]
    fn table3_escalates_ip_and_interface_with_rg() {
        let w = encoder();
        // Row 2: the 1D-DCT engine on IF1.
        let r2 = solve(&w, 20_262_307);
        assert_eq!(r2.chosen()[0].ips, vec![IpId(2)]);
        assert_eq!(r2.chosen()[0].interface, InterfaceKind::Type1);
        assert_eq!(r2.total_gain(), Cycles(37_081_088));
        // Row 4: the 2D-DCT engine.
        let r4 = solve(&w, 37_282_645);
        assert_eq!(r4.chosen()[0].ips, vec![IpId(1)]);
        assert_eq!(r4.total_gain(), Cycles(37_717_440));
        // Row 5: 2D-DCT on IF3 plus the zig-zag IP.
        let r5 = solve(&w, 37_843_700);
        assert_eq!(r5.total_gain(), Cycles(37_843_712));
        assert!(r5
            .chosen()
            .iter()
            .any(|i| i.ips == vec![IpId(1)] && i.interface == InterfaceKind::Type3));
        assert!(r5.chosen().iter().any(|i| i.ips == vec![IpId(5)]));
        assert_eq!(r5.total_area(), AreaTenths::from_tenths(330));
    }

    #[test]
    fn hierarchical_model_flattens_to_top_level() {
        let w = encoder_hierarchical();
        // Children have no IMPs after the fold.
        for sc in 3..=8u32 {
            assert!(w.imps.for_scall(CallSiteId(sc)).is_empty(), "sc{sc}");
        }
        // The 2D-DCT offers the direct engine plus composites.
        let top = w.imps.for_scall(CallSiteId(1));
        assert!(top.len() >= 4);
        // A composite with both 1D-DCT passes reaches their combined gain.
        assert!(top
            .iter()
            .any(|i| i.gain == Cycles(2 * 18_540_544) && i.ips == vec![IpId(2)]));
        // Solving picks the best composite under a mid-range requirement.
        let sel = solve(&w, 37_000_000);
        assert!(sel.total_gain().get() >= 37_000_000);
    }
}
