//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository cannot reach crates.io, so the
//! workspace routes the `rand` dependency to this crate (see the root
//! `Cargo.toml`). It implements exactly the surface partita uses — a seeded
//! deterministic generator with `gen_range` over integer ranges and
//! `gen_bool` — on top of the SplitMix64 mixing function. Streams are stable
//! across runs and platforms, which is what the workload generators need;
//! they intentionally do **not** match upstream `rand`'s streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy {
    /// Draws uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range in gen_range");
                let span = (high as u128) - (low as u128) + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                low + draw as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range in gen_range");
                let span = (high as i128) - (low as i128);
                let span = span as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((low as i128) + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + One + std::ops::Sub<Output = T>> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_inclusive(rng, self.start, self.end - T::one())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Internal helper: the multiplicative identity (used to form `end - 1`).
pub trait One {
    /// Returns `1`.
    fn one() -> Self;
}
macro_rules! impl_one {
    ($($t:ty),*) => {$(impl One for $t { fn one() -> Self { 1 } })*};
}
impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic generator built on SplitMix64.
///
/// The name matches `rand::rngs::StdRng` so call sites compile unchanged,
/// but the stream is SplitMix64's, not ChaCha12's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(1u32..30);
            assert!((1..30).contains(&x));
            let y = rng.gen_range(1..=8);
            assert!((1..=8).contains(&y));
            let z: i32 = rng.gen_range(-50i32..50);
            assert!((-50..50).contains(&z));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn gen_bool_probability_is_roughly_honoured() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
